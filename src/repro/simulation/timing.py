"""Calibrated cost model for DStress deployments.

The paper's scalability numbers (Figure 6, the 4.8-hour headline) are not
measured at N = 1750 — they are *projected* from microbenchmarks. This
module reproduces that estimation pipeline: measure the unit costs of the
two expensive primitives (a GMW AND-gate OT and a group exponentiation) on
this machine, then combine them with protocol operation counts.

Calibration constants can also be injected, which is how the benchmark
suite reports projections in the paper's own regime (their per-OT and
per-exponentiation costs on 2014 EC2 hardware) next to ours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.group import CyclicGroup, default_group
from repro.obs.clock import now as clock_now
from repro.crypto.rng import DeterministicRNG
from repro.mpc.builder import CircuitBuilder
from repro.mpc.gmw import GMWEngine

__all__ = ["CostConstants", "measure_cost_constants", "PAPER_COST_CONSTANTS"]


@dataclass(frozen=True)
class CostConstants:
    """Unit costs everything else is projected from.

    Attributes
    ----------
    seconds_per_ot:
        Wall time of one GMW AND-gate OT (amortized, extension-style).
    seconds_per_exp:
        Wall time of one group exponentiation.
    seconds_per_share:
        Generating and delivering one share word (init step).
    label:
        Where these constants came from (machine or paper regime).
    """

    seconds_per_ot: float
    seconds_per_exp: float
    seconds_per_share: float = 2e-6
    label: str = "measured"


#: Constants back-solved from the paper's §5.2 microbenchmarks: a 20-node
#: EN step (D=100) took ~60 s over ~5M per-party OT invocations
#: (~1.3e-5 s each), and a 20-node single-message transfer took 610 ms
#: over ~870 critical-path exponentiations (~7e-4 s each on 2014 EC2
#: m3.xlarge with OpenSSL secp384r1).
PAPER_COST_CONSTANTS = CostConstants(
    seconds_per_ot=1.3e-5,
    seconds_per_exp=7e-4,
    seconds_per_share=2e-6,
    label="paper (EC2 m3.xlarge, Wysteria/OpenSSL)",
)


def measure_cost_constants(
    group: Optional[CyclicGroup] = None,
    gmw_parties: int = 3,
    sample_and_gates: int = 64,
) -> CostConstants:
    """Measure unit costs on the current machine.

    Times a small GMW evaluation (division by AND count and party pairs
    gives the per-OT cost) and a batch of exponentiations in the given
    group. Takes well under a second — cheap enough to run at benchmark
    startup.
    """
    group = group if group is not None else default_group()
    rng = DeterministicRNG("calibration")

    # --- per-OT cost from a pure-AND circuit ------------------------------
    builder = CircuitBuilder()
    a = builder.input_bus("a", sample_and_gates)
    b = builder.input_bus("b", sample_and_gates)
    builder.output_bus("out", builder.bitwise_and(a, b))
    circuit = builder.circuit
    engine = GMWEngine(gmw_parties)
    shares = {
        "a": engine.share_input(rng.randbits(sample_and_gates), sample_and_gates, rng),
        "b": engine.share_input(rng.randbits(sample_and_gates), sample_and_gates, rng),
    }
    started = clock_now()
    result = engine.evaluate(circuit, shares, rng)
    elapsed = clock_now() - started
    seconds_per_ot = elapsed / max(1, result.traffic.ot_count)

    # --- per-exponentiation cost ------------------------------------------
    base = group.generator
    exponents = [group.random_scalar(rng) for _ in range(32)]
    started = clock_now()
    for exponent in exponents:
        base = group.exp(base, exponent)
    per_exp = (clock_now() - started) / len(exponents)

    return CostConstants(
        seconds_per_ot=seconds_per_ot,
        seconds_per_exp=per_exp,
        label=f"measured ({group.name})",
    )
