"""The DStress message transfer protocol (§3.5, Appendix A) and strawmen."""

from repro.transfer.certificates import (
    BlockCertificate,
    MemberKeys,
    build_certificate,
    certificate_digest,
    generate_member_keys,
    verify_certificate,
)
from repro.transfer.protocol import (
    AggregatedShare,
    EncryptedSubshare,
    MessageTransferProtocol,
    TransferResult,
    TransferTraffic,
)
from repro.transfer.scheme import ShareTransferScheme, TransferInstance
from repro.transfer.strawman import Strawman1, Strawman2, Strawman3, StrawmanOutcome

__all__ = [
    "AggregatedShare",
    "BlockCertificate",
    "EncryptedSubshare",
    "MemberKeys",
    "MessageTransferProtocol",
    "ShareTransferScheme",
    "Strawman1",
    "Strawman2",
    "Strawman3",
    "StrawmanOutcome",
    "TransferInstance",
    "TransferResult",
    "TransferTraffic",
    "build_certificate",
    "certificate_digest",
    "generate_member_keys",
    "verify_certificate",
]
