"""Block certificates: the key material behind edge-private transfers (§3.4).

During setup, the trusted party builds ``D`` certificates for every node's
block. Certificate ``j`` of node ``v`` contains the public keys of every
member of ``B_v`` — each member contributes ``L`` keys for the Kurosawa
optimization — re-randomized with ``v``'s ``j``-th neighbor key. ``v``
forwards each certificate to a different neighbor, so the neighbor's block
can encrypt *to* ``B_v`` without ever seeing an original public key (which
would identify the members).

Certificates are signed by the trusted party so a malicious intermediary
cannot substitute its own keys.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, List, Sequence

from repro.crypto.elgamal import ElGamal, KeyPair
from repro.crypto.group import CyclicGroup
from repro.crypto.keys import SchnorrSignature, SchnorrSigner, SigningKeyPair
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError, ProtocolError

__all__ = [
    "MemberKeys",
    "BlockCertificate",
    "build_certificate",
    "certificate_digest",
    "verify_certificate",
    "generate_member_keys",
]


def generate_member_keys(elgamal: "ElGamal", bits: int, rng: "DeterministicRNG") -> "MemberKeys":
    """Generate one member's ``L`` key pairs (one per message bit)."""
    if bits < 1:
        raise ProtocolError("need at least one bit position")
    return MemberKeys(pairs=[elgamal.keygen(rng) for _ in range(bits)])


@dataclass(frozen=True)
class MemberKeys:
    """One block member's ElGamal key pairs: ``L`` pairs, one per message
    bit position (Kurosawa multi-recipient encryption, §5.1)."""

    pairs: List[KeyPair]

    @property
    def publics(self) -> List[Any]:
        return [kp.public for kp in self.pairs]

    @property
    def secrets(self) -> List[int]:
        return [kp.secret for kp in self.pairs]


@dataclass(frozen=True)
class BlockCertificate:
    """Re-randomized public keys of one block, for one edge slot.

    ``keys[y][t]`` is the re-randomized ``t``-th public key of the block's
    ``y``-th member. ``edge_slot`` says which of the owner's ``D`` neighbor
    keys produced it (the owner knows the matching scalar; nobody else
    does).
    """

    owner: int
    edge_slot: int
    keys: List[List[Any]]
    signature: SchnorrSignature

    @property
    def block_size(self) -> int:
        return len(self.keys)

    @property
    def bits(self) -> int:
        return len(self.keys[0]) if self.keys else 0


def certificate_digest(group: CyclicGroup, owner: int, edge_slot: int, keys: Sequence[Sequence[Any]]) -> bytes:
    """Canonical byte digest of a certificate body for signing."""
    hasher = hashlib.sha256()
    hasher.update(f"cert|{owner}|{edge_slot}|".encode())
    for member_keys in keys:
        for key in member_keys:
            hasher.update(group.element_to_bytes(key))
    return hasher.digest()


def build_certificate(
    elgamal: ElGamal,
    signer: SchnorrSigner,
    tp_key: SigningKeyPair,
    owner: int,
    edge_slot: int,
    member_keys: Sequence[MemberKeys],
    neighbor_key: int,
    rng: DeterministicRNG,
) -> BlockCertificate:
    """Trusted-party construction of one block certificate.

    Every member public key is raised to the owner's neighbor key for this
    edge slot, then the whole table is signed.
    """
    if not member_keys:
        raise ProtocolError("a certificate needs at least one member")
    randomized = [
        [elgamal.rerandomize_key(pk, neighbor_key) for pk in member.publics]
        for member in member_keys
    ]
    digest = certificate_digest(elgamal.group, owner, edge_slot, randomized)
    signature = signer.sign(tp_key, digest, rng)
    return BlockCertificate(owner=owner, edge_slot=edge_slot, keys=randomized, signature=signature)


def verify_certificate(
    elgamal: ElGamal,
    signer: SchnorrSigner,
    tp_public: Any,
    certificate: BlockCertificate,
) -> None:
    """Raise :class:`CryptoError` unless the TP signature checks out."""
    digest = certificate_digest(
        elgamal.group, certificate.owner, certificate.edge_slot, certificate.keys
    )
    if not signer.verify(tp_public, digest, certificate.signature):
        raise CryptoError("block certificate signature is invalid")
