"""The full DStress message transfer protocol for L-bit messages (§3.5).

This is the production form of the Appendix A scheme: it moves an L-bit
message, XOR-shared across the sending block ``B_u``, into fresh XOR shares
across the receiving block ``B_v``, with all communication routed through
the edge endpoints ``u`` and ``v``:

1. every member of ``B_u`` splits its share into ``k+1`` subshares and
   encrypts each subshare *bit by bit* for one member of ``B_v``, using the
   re-randomized keys from the block certificate and the Kurosawa trick
   (one ephemeral scalar, hence one ``c1``, for all ``L`` bits);
2. node ``u`` homomorphically sums the ``(k+1)^2`` encrypted subshares into
   ``k+1`` per-receiver aggregates and adds an even two-sided-geometric
   offset to every bit (the edge-privacy noise of Appendix B);
3. node ``v`` adjusts the ephemeral halves with its neighbor key and hands
   each aggregate to the right member of ``B_v``;
4. each receiver decrypts ``L`` small sums through the bounded dlog table
   and takes parities as its fresh share bits.

The traffic profile matches §5.3: ``u`` handles ``(k+1)^2`` subshares, the
members of ``B_u`` and node ``v`` are linear in ``k``, and each member of
``B_v`` receives a constant-size aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.crypto.elgamal import Ciphertext, ExponentialElGamal
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import DecryptionError, ProtocolError
from repro.privacy.mechanisms import two_sided_geometric_sample
from repro.sharing.xor import share_value, xor_all
from repro.transfer.certificates import BlockCertificate, MemberKeys

__all__ = [
    "EncryptedSubshare",
    "AggregatedShare",
    "TransferTraffic",
    "TransferResult",
    "MessageTransferProtocol",
]


@dataclass(frozen=True)
class EncryptedSubshare:
    """One sender's subshare for one receiver: Kurosawa-packed bits.

    ``c1`` is the shared ephemeral half ``g**y``; ``c2[t]`` encrypts bit
    ``t`` under the receiver's ``t``-th (re-randomized) public key.
    """

    c1: Any
    c2: List[Any]

    def num_elements(self) -> int:
        """Group elements on the wire: 1 + L."""
        return 1 + len(self.c2)


@dataclass(frozen=True)
class AggregatedShare:
    """Per-receiver homomorphic aggregate; same wire shape as a subshare."""

    c1: Any
    c2: List[Any]

    def num_elements(self) -> int:
        return 1 + len(self.c2)


@dataclass
class TransferTraffic:
    """Byte counts per §5.3 role for one edge transfer."""

    element_bytes: int
    block_size: int
    message_bits: int

    @property
    def subshare_bytes(self) -> int:
        """Wire size of one Kurosawa-packed subshare: (L+1) elements."""
        return (self.message_bits + 1) * self.element_bytes

    @property
    def sender_member_bytes(self) -> int:
        """Each member of B_u sends k+1 encrypted subshares to u."""
        return self.block_size * self.subshare_bytes

    @property
    def node_u_received_bytes(self) -> int:
        """u receives (k+1)^2 encrypted subshares — the hot spot."""
        return self.block_size * self.block_size * self.subshare_bytes

    @property
    def node_u_sent_bytes(self) -> int:
        """u forwards k+1 aggregates to v."""
        return self.block_size * self.subshare_bytes

    @property
    def node_v_sent_bytes(self) -> int:
        """v forwards one adjusted aggregate to each member of B_v."""
        return self.block_size * self.subshare_bytes

    @property
    def receiver_member_bytes(self) -> int:
        """Each member of B_v receives one aggregate — constant in k."""
        return self.subshare_bytes


@dataclass
class TransferResult:
    """Outcome of one L-bit transfer."""

    receiver_shares: List[int]
    noise_terms: List[List[int]]
    traffic: TransferTraffic
    #: number of exponential-ElGamal encryptions performed (cost model)
    encryptions: int = 0

    def reconstruct(self, bits: int) -> int:
        return xor_all(self.receiver_shares) & ((1 << bits) - 1)


class MessageTransferProtocol:
    """Executes §3.5 transfers over a given ElGamal instance.

    Parameters
    ----------
    elgamal:
        Exponential ElGamal; its dlog window must cover
        ``k + 1 + max_noise`` (see Appendix B for the failure analysis).
    message_bits:
        The message width ``L`` (the paper uses 12-bit shares; Appendix B
        uses L = 16).
    noise_alpha:
        Parameter of the two-sided geometric edge-privacy noise; ``None``
        disables it (strawman #3 behaviour, for the ablation).
    """

    def __init__(
        self,
        elgamal: ExponentialElGamal,
        message_bits: int,
        noise_alpha: Optional[float] = None,
    ) -> None:
        if message_bits < 1:
            raise ProtocolError("messages need at least one bit")
        self.elgamal = elgamal
        self.message_bits = message_bits
        self.noise_alpha = noise_alpha

    # -- role: member of the sending block B_u -------------------------------

    def sender_encrypt(
        self,
        share_word: int,
        certificate: BlockCertificate,
        rng: DeterministicRNG,
    ) -> List[EncryptedSubshare]:
        """Split an L-bit share into subshares and encrypt one per receiver.

        Returns one :class:`EncryptedSubshare` per member of ``B_v``; the
        Kurosawa optimization spends ``L + 1`` exponentiations per
        receiver instead of ``2L``.
        """
        if certificate.bits != self.message_bits:
            raise ProtocolError("certificate bit width does not match the protocol")
        group = self.elgamal.group
        receivers = certificate.block_size
        subshares = share_value(share_word, self.message_bits, receivers, rng)
        encrypted = []
        for y in range(receivers):
            ephemeral = group.random_scalar(rng)
            c1 = group.power_of_g(ephemeral)
            c2 = []
            for t in range(self.message_bits):
                bit = (subshares[y] >> t) & 1
                pk = certificate.keys[y][t]
                c2.append(group.mul(group.power_of_g(bit), group.exp(pk, ephemeral)))
            encrypted.append(EncryptedSubshare(c1=c1, c2=c2))
        return encrypted

    # -- role: edge endpoint u ------------------------------------------------

    def aggregate(
        self,
        bundles: Sequence[Sequence[EncryptedSubshare]],
        rng: DeterministicRNG,
    ) -> tuple[List[AggregatedShare], List[List[int]]]:
        """Node ``u``: combine subshares per receiver and add even noise.

        ``bundles[x][y]`` is sender ``x``'s subshare for receiver ``y``.
        The Kurosawa ``c1`` halves multiply once per receiver (they are
        shared across bits), and every bit ciphertext receives an
        independent even geometric offset.
        """
        group = self.elgamal.group
        block_size = len(bundles)
        for row in bundles:
            if len(row) != block_size:
                raise ProtocolError("subshare matrix must be square (k+1 x k+1)")
        aggregates = []
        noise_terms: List[List[int]] = []
        for y in range(block_size):
            column = [bundles[x][y] for x in range(block_size)]
            c1 = column[0].c1
            for sub in column[1:]:
                c1 = group.mul(c1, sub.c1)
            c2 = []
            noises = []
            for t in range(self.message_bits):
                acc = column[0].c2[t]
                for sub in column[1:]:
                    acc = group.mul(acc, sub.c2[t])
                noise = 0
                if self.noise_alpha is not None:
                    noise = 2 * two_sided_geometric_sample(self.noise_alpha, rng)
                    acc = group.mul(acc, group.power_of_g(noise))
                c2.append(acc)
                noises.append(noise)
            aggregates.append(AggregatedShare(c1=c1, c2=c2))
            noise_terms.append(noises)
        return aggregates, noise_terms

    # -- role: edge endpoint v ---------------------------------------------------

    def adjust(self, aggregates: Sequence[AggregatedShare], neighbor_key: int) -> List[AggregatedShare]:
        """Node ``v``: raise each shared ephemeral half to the neighbor key
        so the receivers' original secret keys apply."""
        group = self.elgamal.group
        return [
            AggregatedShare(c1=group.exp(agg.c1, neighbor_key), c2=list(agg.c2))
            for agg in aggregates
        ]

    # -- role: member of the receiving block B_v ------------------------------------

    def receiver_decrypt(self, aggregate: AggregatedShare, member: MemberKeys) -> int:
        """Decrypt the L noised sums and take parities as fresh share bits.

        Raises :class:`DecryptionError` when a noised sum escapes the dlog
        window — the Appendix B failure event.
        """
        if len(member.pairs) != self.message_bits:
            raise ProtocolError("receiver key count does not match message bits")
        group = self.elgamal.group
        share = 0
        for t in range(self.message_bits):
            secret = member.pairs[t].secret
            masked = group.mul(aggregate.c2[t], group.inv(group.exp(aggregate.c1, secret)))
            total = self.elgamal.dlog_table.recover(masked)
            share |= (total & 1) << t
        return share

    # -- full edge transfer ----------------------------------------------------------

    def execute(
        self,
        sender_shares: Sequence[int],
        certificate: BlockCertificate,
        neighbor_key: int,
        receiver_keys: Sequence[MemberKeys],
        rng: DeterministicRNG,
    ) -> TransferResult:
        """Run the whole §3.5 pipeline for one edge.

        ``sender_shares`` are the L-bit XOR shares held by ``B_u``;
        ``receiver_keys`` are the original (un-randomized) key pairs of
        ``B_v``'s members; ``neighbor_key`` is the scalar ``v`` used for
        this certificate slot.
        """
        block_size = len(sender_shares)
        if certificate.block_size != block_size or len(receiver_keys) != block_size:
            raise ProtocolError("sending and receiving blocks must have equal size")

        bundles = [
            self.sender_encrypt(share, certificate, rng) for share in sender_shares
        ]
        aggregates, noise_terms = self.aggregate(bundles, rng)
        adjusted = self.adjust(aggregates, neighbor_key)
        receiver_shares = [
            self.receiver_decrypt(agg, member)
            for agg, member in zip(adjusted, receiver_keys)
        ]

        traffic = TransferTraffic(
            element_bytes=self.elgamal.group.element_size_bytes,
            block_size=block_size,
            message_bits=self.message_bits,
        )
        encryptions = block_size * block_size * (self.message_bits + 1)
        return TransferResult(
            receiver_shares=receiver_shares,
            noise_terms=noise_terms,
            traffic=traffic,
            encryptions=encryptions,
        )
