"""The share transfer scheme of Appendix A, function for function.

Appendix A formalizes the §3.5 protocol as seven randomized algorithms —
``Setup``, ``RandomizeKeys``, ``Encrypt``, ``Aggregate``, ``Adjust``,
``Decrypt``, ``Recover`` — and proves (Theorem 1) that the value XOR-shared
in block ``B_u`` before the transfer equals the value XOR-shared in ``B_v``
after it. This module implements those algorithms with the same signatures
so the correctness theorem can be checked property-style, and so the
DStress transfer protocol (:mod:`repro.transfer.protocol`) can be built by
iterating the scheme over message bits.

The scheme moves a *single bit* ``V = XOR_x b_x`` held by the ``k+1``
members of ``B_u`` into fresh shares held by the ``k+1`` members of
``B_v``. All ciphertexts are exponential-ElGamal, so node ``u`` can sum
subshares homomorphically and node ``v`` can adjust ephemeral keys, exactly
as in the construction of Appendix A.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from repro.crypto.elgamal import Ciphertext, ExponentialElGamal, KeyPair
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.privacy.mechanisms import two_sided_geometric_sample
from repro.sharing.xor import share_bit, xor_all

__all__ = ["ShareTransferScheme", "TransferInstance"]


@dataclass
class TransferInstance:
    """Every intermediate artifact of one scheme execution.

    Kept around so tests can play the adversary of the
    ``Transfer_{Advk,Pi}`` game: a coalition's view is a subset of these
    fields.
    """

    sender_shares: List[int]
    subshares: List[List[int]]
    encrypted_subshares: List[List[Ciphertext]]
    aggregated: List[Ciphertext]
    noise_terms: List[int]
    adjusted: List[Ciphertext]
    decrypted_sums: List[int]
    receiver_shares: List[int]


class ShareTransferScheme:
    """``DStressTransfer`` from Appendix A.2.

    Parameters
    ----------
    elgamal:
        Exponential ElGamal over the chosen DDH group; its dlog table must
        cover ``k + 1`` plus the noise the scheme can add.
    noise_alpha:
        Parameter of the geometric noise (``alpha^{2/Delta}`` in the
        Appendix B notation). ``None`` disables noising — that is exactly
        strawman #3, kept here for the ablation.
    """

    def __init__(self, elgamal: ExponentialElGamal, noise_alpha: Optional[float] = None) -> None:
        self.elgamal = elgamal
        self.noise_alpha = noise_alpha

    # -- the seven algorithms of Appendix A.1 --------------------------------

    def setup(self, block_size: int, rng: DeterministicRNG) -> List[KeyPair]:
        """``Setup``: one key pair per member of the receiving block."""
        if block_size < 2:
            raise ProtocolError("blocks need at least two members")
        return [self.elgamal.keygen(rng) for _ in range(block_size)]

    def randomize_keys(self, public_keys: Sequence[Any], neighbor_key: int) -> List[Any]:
        """``RandomizeKeys``: raise every public key to the neighbor key."""
        return [self.elgamal.rerandomize_key(pk, neighbor_key) for pk in public_keys]

    def encrypt(
        self,
        sender_shares: Sequence[int],
        randomized_keys: Sequence[Any],
        rng: DeterministicRNG,
    ) -> tuple[List[List[int]], List[List[Ciphertext]]]:
        """``Encrypt``: split each share into subshares and encrypt one per
        receiver. Returns (subshares, ciphertexts), both indexed
        ``[sender][receiver]``."""
        receivers = len(randomized_keys)
        subshares = [share_bit(s, receivers, rng) for s in sender_shares]
        ciphertexts = [
            [
                self.elgamal.encrypt_int(randomized_keys[y], subshares[x][y], rng)
                for y in range(receivers)
            ]
            for x in range(len(sender_shares))
        ]
        return subshares, ciphertexts

    def aggregate(
        self,
        ciphertexts: Sequence[Sequence[Ciphertext]],
        rng: DeterministicRNG,
    ) -> tuple[List[Ciphertext], List[int]]:
        """``Aggregate``: node ``u`` homomorphically sums the column of
        subshare ciphertexts for each receiver, then adds an *even* random
        offset ``2 * Geo(alpha)`` (the final-protocol noising; §3.5)."""
        receivers = len(ciphertexts[0])
        aggregated = []
        noise_terms = []
        for y in range(receivers):
            column = [row[y] for row in ciphertexts]
            total = self.elgamal.sum_ciphertexts(column)
            noise = 0
            if self.noise_alpha is not None:
                # "An even random number from 2*Geo(alpha)" (§3.5) — Geo is
                # the two-sided geometric of Ghosh et al. [33].
                noise = 2 * two_sided_geometric_sample(self.noise_alpha, rng)
                total = self.elgamal.add_plain(total, noise)
            aggregated.append(total)
            noise_terms.append(noise)
        return aggregated, noise_terms

    def adjust(self, aggregated: Sequence[Ciphertext], neighbor_key: int) -> List[Ciphertext]:
        """``Adjust``: node ``v`` raises each ephemeral key to the neighbor
        key so the original secret keys decrypt."""
        return [self.elgamal.adjust(ct, neighbor_key) for ct in aggregated]

    def decrypt(self, adjusted: Sequence[Ciphertext], key_pairs: Sequence[KeyPair]) -> List[int]:
        """``Decrypt``: each receiver recovers its noised subshare sum."""
        if len(adjusted) != len(key_pairs):
            raise ProtocolError("one ciphertext per receiver expected")
        return [
            self.elgamal.decrypt_int(kp.secret, ct)
            for ct, kp in zip(adjusted, key_pairs)
        ]

    def recover(self, sums: Sequence[int]) -> List[int]:
        """``Recover``: a receiver's fresh share is the parity of its sum
        (even noise never flips parity)."""
        return [s & 1 for s in sums]

    # -- end-to-end driver ------------------------------------------------------

    def run(
        self,
        value: int,
        block_size: int,
        rng: DeterministicRNG,
    ) -> TransferInstance:
        """Execute the whole scheme on a fresh sharing of ``value``; used by
        the correctness (Theorem 1) and privacy tests."""
        if value not in (0, 1):
            raise ProtocolError("the scheme transfers a single bit")
        key_pairs = self.setup(block_size, rng)
        neighbor_key = self.elgamal.group.random_scalar(rng)
        randomized = self.randomize_keys([kp.public for kp in key_pairs], neighbor_key)

        sender_shares = share_bit(value, block_size, rng)
        subshares, ciphertexts = self.encrypt(sender_shares, randomized, rng)
        aggregated, noise_terms = self.aggregate(ciphertexts, rng)
        adjusted = self.adjust(aggregated, neighbor_key)
        sums = self.decrypt(adjusted, key_pairs)
        receiver_shares = self.recover(sums)

        if xor_all(receiver_shares) != value:
            raise ProtocolError("transfer correctness violated (Theorem 1)")
        return TransferInstance(
            sender_shares=sender_shares,
            subshares=subshares,
            encrypted_subshares=ciphertexts,
            aggregated=aggregated,
            noise_terms=noise_terms,
            adjusted=adjusted,
            decrypted_sums=sums,
            receiver_shares=receiver_shares,
        )
