"""The three strawman transfer protocols of §3.5 and their leaks.

The paper derives the final transfer protocol through three broken
intermediates. Implementing them pays off twice: the test suite
*demonstrates* each leak (so the final protocol's fixes are evidenced, not
asserted), and the ablation benchmark prices each refinement.

* **Strawman #1** — each sender encrypts its whole share for one receiver.
  Leak: a single node sitting in (or colluding across) both blocks learns
  whole shares.
* **Strawman #2** — subshare splitting restores collusion resistance, but
  ciphertexts travel unchanged, so a sender/receiver pair can recognize
  a ciphertext and infer the edge.
* **Strawman #3** — per-bit encryption plus homomorphic summation destroys
  recognizability, but the decrypted sums are correlated with the sent
  subshares, so a coalition can statistically test for the edge.

The final protocol (strawman #3 + even geometric noise) lives in
:mod:`repro.transfer.scheme` / :mod:`repro.transfer.protocol`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Set, Tuple

from repro.crypto.elgamal import Ciphertext, ExponentialElGamal, KeyPair
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.sharing.xor import reconstruct_value, share_value, xor_all

__all__ = ["Strawman1", "Strawman2", "Strawman3", "StrawmanOutcome"]


@dataclass
class StrawmanOutcome:
    """Result of a strawman run, retaining the adversary-visible artifacts."""

    message: int
    receiver_shares: List[int]
    #: ciphertext bytes as seen in transit, for recognizability attacks
    transit_ciphertexts: List[List[bytes]]
    #: plaintext values each receiver ends up decrypting
    receiver_plaintexts: List[List[int]]

    def reconstructed(self, bits: int) -> int:
        return reconstruct_value(self.receiver_shares, bits)


class _StrawmanBase:
    def __init__(self, elgamal: ExponentialElGamal, message_bits: int) -> None:
        if message_bits < 1:
            raise ProtocolError("messages need at least one bit")
        self.elgamal = elgamal
        self.message_bits = message_bits

    def _keys(self, block_size: int, rng: DeterministicRNG) -> List[KeyPair]:
        return [self.elgamal.keygen(rng) for _ in range(block_size)]

    def _ct_bytes(self, ct: Ciphertext) -> bytes:
        g = self.elgamal.group
        return g.element_to_bytes(ct.c1) + g.element_to_bytes(ct.c2)


class Strawman1(_StrawmanBase):
    """§3.5 strawman #1: whole shares, one receiver each.

    Sender ``x`` encrypts its entire share for receiver ``x`` (a bijection;
    the paper says "a different public key" per sender).
    """

    def run(self, message: int, block_size: int, rng: DeterministicRNG) -> StrawmanOutcome:
        keys = self._keys(block_size, rng)
        sender_shares = share_value(message, self.message_bits, block_size, rng)
        transit: List[List[bytes]] = [[] for _ in range(block_size)]
        received: List[List[int]] = [[] for _ in range(block_size)]
        for x, share in enumerate(sender_shares):
            ct = self.elgamal.encrypt_int(keys[x].public, share, rng)
            transit[x].append(self._ct_bytes(ct))
            received[x].append(self.elgamal.decrypt_int(keys[x].secret, ct))
        receiver_shares = [vals[0] for vals in received]
        return StrawmanOutcome(message, receiver_shares, transit, received)

    @staticmethod
    def leaked_shares(
        sender_shares: Sequence[int], colluding_pairs: Set[int]
    ) -> List[int]:
        """Shares a coalition learns: any receiver index it controls maps
        one-to-one to a sender's whole share."""
        return [sender_shares[x] for x in colluding_pairs]


class Strawman2(_StrawmanBase):
    """§3.5 strawman #2: subshare splitting, ciphertexts forwarded as-is.

    Collusion-resistant for share *contents*, but the bytes that leave a
    corrupt sender can be recognized by a corrupt receiver — an edge
    oracle.
    """

    def run(self, message: int, block_size: int, rng: DeterministicRNG) -> StrawmanOutcome:
        keys = self._keys(block_size, rng)
        sender_shares = share_value(message, self.message_bits, block_size, rng)
        transit: List[List[bytes]] = [[] for _ in range(block_size)]
        received: List[List[int]] = [[] for _ in range(block_size)]
        for x, share in enumerate(sender_shares):
            subshares = share_value(share, self.message_bits, block_size, rng)
            for y, subshare in enumerate(subshares):
                ct = self.elgamal.encrypt_int(keys[y].public, subshare, rng)
                transit[x].append(self._ct_bytes(ct))
                received[y].append(self.elgamal.decrypt_int(keys[y].secret, ct))
        receiver_shares = [xor_all(vals) for vals in received]
        return StrawmanOutcome(message, receiver_shares, transit, received)

    @staticmethod
    def edge_recognizable(sent: Sequence[bytes], observed: Sequence[bytes]) -> bool:
        """The recognizability attack: did any ciphertext a corrupt sender
        produced appear verbatim at a corrupt receiver?"""
        return bool(set(sent) & set(observed))


class Strawman3(_StrawmanBase):
    """§3.5 strawman #3: per-bit encryption + homomorphic sums, no noise.

    The receivers see exact subshare-bit sums; a coalition holding the
    senders' subshares can check whether the observed sums are consistent
    with them, gaining edge information. Functionally this is the final
    protocol with the noise removed.
    """

    def run(self, message: int, block_size: int, rng: DeterministicRNG) -> StrawmanOutcome:
        keys = self._keys(block_size, rng)
        sender_shares = share_value(message, self.message_bits, block_size, rng)
        transit: List[List[bytes]] = [[] for _ in range(block_size)]
        received: List[List[int]] = [[] for _ in range(block_size)]

        # subshare_bits[x][y][t]: bit t of sender x's subshare for receiver y
        subshare_bits: List[List[List[int]]] = []
        for x, share in enumerate(sender_shares):
            subshares = share_value(share, self.message_bits, block_size, rng)
            subshare_bits.append(
                [[(sub >> t) & 1 for t in range(self.message_bits)] for sub in subshares]
            )

        for y in range(block_size):
            sums = []
            for t in range(self.message_bits):
                cts = []
                for x in range(block_size):
                    ct = self.elgamal.encrypt_int(keys[y].public, subshare_bits[x][y][t], rng)
                    transit[x].append(self._ct_bytes(ct))
                    cts.append(ct)
                total = self.elgamal.sum_ciphertexts(cts)
                sums.append(self.elgamal.decrypt_int(keys[y].secret, total))
            received[y] = sums

        receiver_shares = []
        for y in range(block_size):
            share = 0
            for t, s in enumerate(received[y]):
                share |= (s & 1) << t
            receiver_shares.append(share)
        return StrawmanOutcome(message, receiver_shares, transit, received)

    @staticmethod
    def sums_consistent(
        adversary_subshare_bits: Sequence[Sequence[int]],
        observed_sums: Sequence[int],
        honest_senders: int,
    ) -> bool:
        """The §3.5 side-channel test: with ``k`` of ``k+1`` senders corrupt,
        each observed per-bit sum must lie within ``honest_senders`` of the
        coalition's own contribution. Outside that window, the edge cannot
        exist; persistent consistency builds confidence that it does."""
        for t, observed in enumerate(observed_sums):
            contribution = sum(bits[t] for bits in adversary_subshare_bits)
            if not (contribution <= observed <= contribution + honest_senders):
                return False
        return True
