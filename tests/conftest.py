"""Shared fixtures for the test suite.

Crypto-heavy tests default to the toy 64-bit Schnorr group: the algebra is
identical to the production groups and unit tests are about correctness,
not parameter sizes. Group-size fidelity is covered by the dedicated
`test_crypto_*` modules, which exercise the 256-bit group and the NIST
curves directly.
"""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.finance.network import Bank, FinancialNetwork
from repro.mpc.fixedpoint import FixedPointFormat

# Hypothesis budgets: the per-push default keeps tier-1 fast; the nightly
# workflow selects the deep profile with ``--hypothesis-profile=nightly``
# (10x the example budget, no deadline — crypto strategies can be slow
# per example without being wrong).
_BASE_EXAMPLES = 100
settings.register_profile("default", max_examples=_BASE_EXAMPLES)
settings.register_profile("nightly", max_examples=10 * _BASE_EXAMPLES, deadline=None)
settings.load_profile("default")


def scale(max_examples: int) -> int:
    """A test's example budget under the active hypothesis profile.

    Property tests pin per-test budgets tuned to their example cost
    (crypto tests run few expensive examples, fixed-point tests many cheap
    ones). An explicit ``max_examples`` would silently override the
    profile, so pins go through this helper: it preserves the tuned
    *ratios* while letting ``--hypothesis-profile=nightly`` scale every
    budget up together. Evaluated at decoration time — after the pytest
    plugin has loaded the CLI-selected profile, since conftest import
    precedes test module import.
    """
    return max(1, int(max_examples * settings.default.max_examples / _BASE_EXAMPLES))


@pytest.fixture
def rng() -> DeterministicRNG:
    return DeterministicRNG("test-seed")


@pytest.fixture
def toy_elgamal() -> ExponentialElGamal:
    return ExponentialElGamal(TOY_GROUP_64, dlog_half_width=512)


@pytest.fixture
def fmt() -> FixedPointFormat:
    return FixedPointFormat(16, 8)


@pytest.fixture
def small_en_network() -> FinancialNetwork:
    """4-bank chain with a cascading default (bank 0 under-reserved)."""
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


@pytest.fixture
def small_egj_network() -> FinancialNetwork:
    """3-bank cross-holding ring with one weak bank."""
    net = FinancialNetwork()
    net.add_bank(Bank(0, base_assets=1.0, orig_value=10.0, threshold=5.0, penalty=2.0))
    net.add_bank(Bank(1, base_assets=6.0, orig_value=10.0, threshold=5.0, penalty=2.0))
    net.add_bank(Bank(2, base_assets=8.0, orig_value=12.0, threshold=6.0, penalty=3.0))
    net.add_holding(1, 0, 0.4)
    net.add_holding(2, 1, 0.3)
    net.add_holding(0, 2, 0.5)
    return net
