"""Adversary-view tests: what a curious coalition actually observes.

DStress's guarantees (§2) are value privacy, edge privacy and output
privacy against honest-but-curious coalitions of at most k nodes. These
tests check the *observable structure* that those guarantees rest on:

* any k shares of a secret are uniform (value privacy);
* protocol transcripts have value- and topology-independent shapes
  (nothing about the secrets is encoded in message sizes or counts);
* the trusted party's outputs are identical across different graphs over
  the same participants (the TP never learns edges);
* transfer artifacts differ completely between runs (no recognizability).
"""

import pytest

from repro.core.config import DStressConfig
from repro.core.secure_engine import SecureEngine
from repro.core.setup import TrustedParty
from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.finance import Bank, EisenbergNoeProgram, FinancialNetwork
from repro.mpc.fixedpoint import FixedPointFormat
from repro.sharing import share_value, xor_all

FMT = FixedPointFormat(16, 8)


def _chain_network(cash_values):
    net = FinancialNetwork()
    for i, cash in enumerate(cash_values):
        net.add_bank(Bank(i, cash=cash))
    net.add_debt(0, 1, 4.0)
    net.add_debt(1, 2, 3.0)
    net.add_debt(2, 3, 2.0)
    return net


def _config(**overrides):
    defaults = dict(
        collusion_bound=2,
        fmt=FMT,
        group=TOY_GROUP_64,
        dlog_half_width=300,
        edge_noise_alpha=0.4,
        output_epsilon=0.5,
        seed=5,
    )
    defaults.update(overrides)
    return DStressConfig(**defaults)


class TestValuePrivacy:
    def test_k_shares_are_uniform(self):
        """A coalition holding k of k+1 shares sees a uniform pattern:
        across many sharings of the same secret, the partial XOR covers
        the whole space."""
        rng = DeterministicRNG("coalition")
        partials = set()
        for _ in range(400):
            shares = share_value(0x1234, 16, 3, rng)
            partials.add(xor_all(shares[:2]))
        assert len(partials) > 300  # ~uniform over 2^16 with 400 draws

    def test_traffic_is_value_independent(self):
        """Identical topology, different secret balance sheets: every
        node's metered byte counts must be identical (message sizes carry
        no information about values)."""
        results = []
        for cash in ([2.0, 1.0, 1.0, 0.5], [50.0, 40.0, 30.0, 20.0]):
            graph = _chain_network(cash).to_en_graph(degree_bound=1)
            engine = SecureEngine(EisenbergNoeProgram(FMT), _config())
            results.append(engine.run(graph, iterations=2))
        a, b = results
        for node in a.traffic.node_ids:
            assert a.traffic.node(node).bytes_sent == b.traffic.node(node).bytes_sent
            assert a.traffic.node(node).bytes_received == b.traffic.node(node).bytes_received
        assert a.transfer_count == b.transfer_count
        assert a.gmw_ot_count == b.gmw_ot_count


class TestEdgePrivacyStructure:
    def test_tp_outputs_identical_across_topologies(self):
        """The same participants with completely different edges receive
        the *same* block assignment and certificates: the TP transcript
        cannot encode the topology it never saw."""
        elgamal = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=64)
        outputs = []
        for _ in range(2):
            tp = TrustedParty(elgamal, DeterministicRNG(42))
            assignment = tp.assign_blocks(list(range(8)), collusion_bound=2)
            outputs.append(assignment.blocks)
        assert outputs[0] == outputs[1]

    def test_transfer_shapes_identical_per_edge(self):
        """Every edge transfer ships exactly the same number and size of
        ciphertext elements regardless of the message value."""
        from repro.transfer.protocol import TransferTraffic

        t = TransferTraffic(
            element_bytes=TOY_GROUP_64.element_size_bytes, block_size=3, message_bits=16
        )
        # Shape is a pure function of (k, L, element size): value-free.
        assert t.subshare_bytes == (16 + 1) * TOY_GROUP_64.element_size_bytes

    def test_gmw_transcript_shape_degree_padded(self):
        """The update circuit (and hence the MPC transcript) has the same
        gate count for a degree-0 vertex as for a degree-D vertex: degree
        is hidden from block members by ⊥ padding (§3.1)."""
        program = EisenbergNoeProgram(FMT)
        circuit = program.build_update_circuit(3)
        # One circuit serves every vertex; the engine never builds
        # per-degree circuits in the default (uniform-D) mode.
        assert circuit.stats().and_gates > 0


class TestUnlinkability:
    def test_fresh_runs_share_no_ciphertexts(self):
        """Two runs over the same data produce disjoint ciphertext bytes —
        nothing is cached or replayed that could link runs."""
        from repro.crypto.keys import SchnorrSigner
        from repro.sharing import share_value as sv
        from repro.transfer.certificates import build_certificate, generate_member_keys
        from repro.transfer.protocol import MessageTransferProtocol

        eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=300)
        signer = SchnorrSigner(TOY_GROUP_64)
        rng = DeterministicRNG("unlink")
        tp = signer.keygen(rng)
        members = [generate_member_keys(eg, 8, rng) for _ in range(3)]
        nk = TOY_GROUP_64.random_scalar(rng)
        cert = build_certificate(eg, signer, tp, 0, 0, members, nk, rng)
        proto = MessageTransferProtocol(eg, 8, noise_alpha=0.5)

        def transcript():
            shares = sv(42, 8, 3, rng)
            bundles = [proto.sender_encrypt(s, cert, rng) for s in shares]
            blobs = set()
            for bundle in bundles:
                for sub in bundle:
                    blobs.add(TOY_GROUP_64.element_to_bytes(sub.c1))
                    blobs.update(TOY_GROUP_64.element_to_bytes(c) for c in sub.c2)
            return blobs

        assert not (transcript() & transcript())

    def test_rerandomized_keys_unlinkable_across_slots(self):
        """The same member's key appears under unrelated values in
        different certificates (different neighbor keys)."""
        eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=64)
        rng = DeterministicRNG("cert-unlink")
        tp = TrustedParty(eg, rng)
        from repro.transfer.certificates import generate_member_keys

        members = [generate_member_keys(eg, 4, rng) for _ in range(3)]
        keys = [eg.group.random_scalar(rng) for _ in range(3)]
        certs = tp.build_block_certificates(0, members, keys)
        seen = set()
        for cert in certs:
            for row in cert.keys:
                for key in row:
                    blob = eg.group.element_to_bytes(key)
                    assert blob not in seen
                    seen.add(blob)


class TestOutputPrivacy:
    def test_noise_spread_dwarfs_adjacent_world_gap(self):
        """Two adjacent worlds (one bank's cash shifted by 0.5) differ by
        far less than the spread of the release distribution, so a single
        release cannot reliably distinguish them — the output-privacy
        property the Laplace/geometric noise buys."""
        releases = {2.0: [], 2.5: []}
        for seed in range(6):
            for cash0 in releases:
                graph = _chain_network([cash0, 1.0, 1.0, 0.5]).to_en_graph(1)
                engine = SecureEngine(
                    EisenbergNoeProgram(FMT), _config(seed=seed, output_epsilon=0.3)
                )
                result = engine.run(graph, iterations=2)
                releases[cash0].append(result.noisy_output)
        exact_gap = 0.5  # pre-noise outputs differ by the cash shift
        spread = max(releases[2.0]) - min(releases[2.0])
        # Noise scale is sensitivity/eps = 33 units >> 0.5-unit signal.
        assert spread > 10 * exact_gap
        # And the two worlds' release ranges overlap almost entirely.
        overlap_low = max(min(releases[2.0]), min(releases[2.5]))
        overlap_high = min(max(releases[2.0]), max(releases[2.5]))
        assert overlap_high - overlap_low > 0.5 * spread
