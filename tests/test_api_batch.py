"""Batch scenario runs: fan-out, determinism, shared budget accounting.

``run_many`` must (a) return results in input order whatever the worker
count, (b) be bit-reproducible under fixed seeds, (c) charge one shared
accountant for every output-releasing scenario *before* any compute and
refuse over-budget batches whole, and (d) capture per-scenario runtime
failures without losing the rest of the batch.
"""

import math

import pytest

from repro import (
    Bank,
    FinancialNetwork,
    PrivacyAccountant,
    Scenario,
    StressTest,
)
from repro.api import Engine, NaiveMPCEngine, RunResult
from repro.exceptions import (
    ConfigurationError,
    PrivacyBudgetExceeded,
    ProtocolError,
)


def make_network(shock: float = 0.0) -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0 - shock))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


def make_scenarios(count: int = 5):
    return [
        Scenario(name=f"shock-{i}", network=make_network(i / 2.0), seed=100 + i)
        for i in range(count)
    ]


@pytest.fixture
def template():
    return StressTest(make_network()).program("eisenberg-noe").engine("plaintext")


class ExplodingEngine(Engine):
    """Raises mid-execution — exercises worker-side failure capture."""

    name = "test-exploding"

    def execute(self, program, graph, iterations, config, accountant=None):
        raise ProtocolError("simulated mid-protocol failure")


# ----------------------------------------------------------------- fan-out --


def test_run_many_parallel_order_and_timing(template):
    scenarios = make_scenarios(5)
    batch = template.run_many(scenarios, workers=3)
    assert len(batch) == 5
    assert [o.name for o in batch] == [s.name for s in scenarios]
    assert all(o.ok for o in batch)
    assert batch.workers == 3
    assert batch.wall_seconds > 0
    assert set(batch.scenario_seconds) == {s.name for s in scenarios}
    # deeper shocks mean strictly larger shortfalls, in input order
    aggregates = [o.result.aggregate for o in batch]
    assert aggregates == sorted(aggregates)
    assert "5/5 scenarios ok" in batch.summary()


def test_run_many_results_are_run_results(template):
    batch = template.run_many(make_scenarios(2), workers=1)
    for result in batch.results:
        assert isinstance(result, RunResult)
        assert result.engine == "plaintext"
        assert result.converged_at() is not None
    assert batch.by_name("shock-1").result is batch.outcomes[1].result
    with pytest.raises(ConfigurationError, match="shock-0"):
        batch.by_name("nope")


def test_run_many_deterministic_across_runs_and_worker_counts(template):
    scenarios = make_scenarios(4)
    parallel = template.run_many(scenarios, workers=2)
    again = template.run_many(scenarios, workers=2)
    serial = template.run_many(scenarios, workers=1)
    assert parallel.aggregates() == again.aggregates() == serial.aggregates()


def test_run_many_seeded_noise_reproducibility(template):
    """Releasing engines draw noise from the scenario seed, nothing else."""
    noisy = template.clone().engine(NaiveMPCEngine(estimate_cost=False))
    scenarios = make_scenarios(4)
    first = noisy.run_many(scenarios, workers=2)
    second = noisy.run_many(scenarios, workers=1)
    assert first.aggregates() == second.aggregates()
    reseeded = [
        Scenario(name=s.name, network=s.network, seed=s.seed + 1) for s in scenarios
    ]
    assert noisy.run_many(reseeded, workers=2).aggregates() != first.aggregates()


def test_scenario_fields_override_template(template):
    batch = template.run_many(
        [
            Scenario(name="default-engine"),
            Scenario(name="fixed-engine", engine="fixed", iterations=2),
            Scenario(name="egj", program="egj", network=_egj_network(), iterations=3),
        ],
        workers=1,
    )
    assert batch.outcomes[0].result.engine == "plaintext"
    assert batch.outcomes[1].result.engine == "fixed"
    assert batch.outcomes[1].result.iterations == 2
    assert batch.outcomes[2].result.program == "elliott-golub-jackson"


def _egj_network() -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, base_assets=1.0, orig_value=10.0, threshold=5.0, penalty=2.0))
    net.add_bank(Bank(1, base_assets=6.0, orig_value=10.0, threshold=5.0, penalty=2.0))
    net.add_bank(Bank(2, base_assets=8.0, orig_value=12.0, threshold=6.0, penalty=3.0))
    net.add_holding(1, 0, 0.4)
    net.add_holding(2, 1, 0.3)
    net.add_holding(0, 2, 0.5)
    return net


# -------------------------------------------------------------- validation --


def test_empty_batch_is_refused(template):
    with pytest.raises(ConfigurationError, match="at least one"):
        template.run_many([])


def test_duplicate_scenario_names_are_refused(template):
    with pytest.raises(ConfigurationError, match="duplicate"):
        template.run_many([Scenario(name="a"), Scenario(name="a")])


def test_bad_scenario_aborts_batch_before_any_run(template):
    """Resolve-time failures name the scenario and run nothing."""
    scenarios = [
        Scenario(name="fine"),
        Scenario(name="impossible-bound", degree_bound=1),
    ]
    with pytest.raises(ConfigurationError, match="impossible-bound"):
        template.run_many(scenarios, workers=2)


def test_worker_failures_are_captured_per_scenario(template):
    scenarios = [
        Scenario(name="ok"),
        Scenario(name="boom", engine=ExplodingEngine()),
        Scenario(name="also-ok"),
    ]
    batch = template.run_many(scenarios, workers=2)
    assert [o.ok for o in batch] == [True, False, True]
    failure = batch.failures[0]
    assert failure.name == "boom"
    assert "ProtocolError" in failure.error
    assert batch.aggregates().keys() == {"ok", "also-ok"}
    assert "2/3 scenarios ok" in batch.summary()


# ------------------------------------------------------- budget accounting --


def test_shared_accountant_charged_per_releasing_scenario(template):
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    noisy = template.clone().engine(NaiveMPCEngine(estimate_cost=False)).privacy(
        epsilon=0.2
    )
    batch = noisy.run_many(make_scenarios(3), workers=2, accountant=accountant)
    assert batch.epsilon_charged == pytest.approx(0.6)
    assert accountant.spent == pytest.approx(0.6)
    assert [c.label for c in accountant.charges] == ["shock-0", "shock-1", "shock-2"]


def test_plaintext_scenarios_do_not_consume_budget(template):
    accountant = PrivacyAccountant(epsilon_max=0.01)
    batch = template.run_many(make_scenarios(4), workers=1, accountant=accountant)
    assert batch.epsilon_charged == 0.0
    assert accountant.spent == 0.0


def test_over_budget_batch_is_refused_whole(template):
    accountant = PrivacyAccountant(epsilon_max=0.5)
    noisy = template.clone().engine(NaiveMPCEngine(estimate_cost=False)).privacy(
        epsilon=0.2
    )
    with pytest.raises(PrivacyBudgetExceeded, match="replenish"):
        noisy.run_many(make_scenarios(3), workers=1, accountant=accountant)
    # refusal is atomic: nothing was charged for runs that never happened
    assert accountant.spent == 0.0
    # after replenishing, the same batch fits
    accountant.replenish()
    batch = noisy.run_many(make_scenarios(2), workers=1, accountant=accountant)
    assert accountant.spent == pytest.approx(0.4)
    assert all(o.ok for o in batch)


def test_session_accountant_is_used_by_default(template):
    accountant = PrivacyAccountant()
    noisy = (
        template.clone()
        .engine(NaiveMPCEngine(estimate_cost=False))
        .privacy(epsilon=0.1, accountant=accountant)
    )
    noisy.run_many(make_scenarios(2), workers=1)
    assert accountant.spent == pytest.approx(0.2)
