"""Failure paths of ``run_batch``: errors must name their scenario, budget
refusal must precede any compute, and typos must list what exists.

These complement the happy-path batch tests: a regulator debugging a
40-scenario overnight batch needs the failing scenario's *name* in every
error, needs certainty that a refused batch consumed neither budget nor
CPU, and needs typo errors that are a one-glance fix.
"""

import math
import os

import pytest

from repro import (
    Bank,
    FinancialNetwork,
    PrivacyAccountant,
    Scenario,
    StressTest,
)
from repro.api import Engine, RunResult
from repro.exceptions import (
    ConfigurationError,
    PrivacyBudgetExceeded,
    ProtocolError,
)


def make_network(shock: float = 0.0) -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0 - shock))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


@pytest.fixture
def template():
    return StressTest(make_network()).program("eisenberg-noe").engine("plaintext")


class ProtocolCrashEngine(Engine):
    """Raises a DStress-domain error mid-execution."""

    name = "test-protocol-crash"

    def execute(self, program, graph, iterations, config, accountant=None):
        raise ProtocolError("share reconstruction failed at round 2")


class HardCrashEngine(Engine):
    """Raises a non-DStress error — the defensive traceback path."""

    name = "test-hard-crash"

    def execute(self, program, graph, iterations, config, accountant=None):
        raise RuntimeError("segfault-adjacent surprise")


class MarkerEngine(Engine):
    """Releasing engine that leaves a file marker when it actually runs."""

    name = "test-marker"
    releases_output = True

    def __init__(self, marker_path: str) -> None:
        self.marker_path = marker_path

    def execute(self, program, graph, iterations, config, accountant=None):
        with open(self.marker_path, "a") as handle:
            handle.write("ran\n")
        return RunResult(
            engine=self.name,
            program=program.name,
            aggregate=0.0,
            trajectory=[0.0],
            iterations=iterations,
            wall_seconds=0.0,
            epsilon=config.output_epsilon,
        )


# ------------------------------------------------- worker crash reporting --


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_crash_surfaces_scenario_name(template, workers):
    scenarios = [
        Scenario(name="healthy"),
        Scenario(name="mid-protocol-crash", engine=ProtocolCrashEngine()),
        Scenario(name="survivor"),
    ]
    batch = template.run_many(scenarios, workers=workers)
    assert [o.ok for o in batch] == [True, False, True]
    failure = batch.failures[0]
    assert "mid-protocol-crash" in failure.error
    assert "ProtocolError" in failure.error
    # the rest of the batch completed despite the crash
    assert batch.aggregates().keys() == {"healthy", "survivor"}


def test_unexpected_worker_exception_names_scenario_and_keeps_traceback(template):
    batch = template.run_many(
        [Scenario(name="boom", engine=HardCrashEngine()), Scenario(name="fine")],
        workers=2,
    )
    failure = batch.by_name("boom")
    assert not failure.ok
    assert "'boom' crashed" in failure.error
    assert "RuntimeError" in failure.error
    assert "segfault-adjacent surprise" in failure.error
    assert batch.by_name("fine").ok


# ------------------------------------------------ budget-before-compute --


def test_budget_exhaustion_refuses_batch_before_any_compute(template, tmp_path):
    marker = str(tmp_path / "executions.log")
    noisy = (
        template.clone()
        .engine(MarkerEngine(marker))
        .privacy(epsilon=0.3)
    )
    accountant = PrivacyAccountant(epsilon_max=0.5)
    scenarios = [
        Scenario(name=f"release-{i}", network=make_network(i / 2.0)) for i in range(3)
    ]
    with pytest.raises(PrivacyBudgetExceeded) as excinfo:
        noisy.run_many(scenarios, workers=2, accountant=accountant)
    # the refusal happened before any engine execution or budget charge
    assert not os.path.exists(marker)
    assert accountant.spent == 0.0
    # and the message quantifies the shortfall
    message = str(excinfo.value)
    assert "0.9" in message and "3" in message

    # an affordable batch then runs and leaves exactly one marker per run
    affordable = noisy.run_many(scenarios[:1], workers=1, accountant=accountant)
    assert all(o.ok for o in affordable)
    with open(marker) as handle:
        assert handle.read().count("ran") == 1
    assert accountant.spent == pytest.approx(0.3)


class BadShardsEngine(Engine):
    """Releasing engine advertising an invalid shard width."""

    name = "test-bad-shards"
    releases_output = True
    shards = 0  # plan_workers must reject this before budget is charged

    def execute(self, program, graph, iterations, config, accountant=None):
        raise AssertionError("must never execute")


def test_worker_planning_failure_does_not_burn_budget(template):
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    session = template.clone().engine(BadShardsEngine()).privacy(epsilon=0.1)
    with pytest.raises(ConfigurationError, match="shard width"):
        session.run_many(
            [Scenario(name="never-runs")], workers=2, accountant=accountant
        )
    assert accountant.spent == 0.0


def test_budget_check_covers_only_releasing_scenarios(template, tmp_path):
    marker = str(tmp_path / "executions.log")
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(name="free"),  # template plaintext engine: no release
        Scenario(name="paid", engine=MarkerEngine(marker), epsilon=0.25),
    ]
    batch = template.run_many(scenarios, workers=1, accountant=accountant)
    assert batch.epsilon_charged == pytest.approx(0.25)
    assert [c.label for c in accountant.charges] == ["paid"]


# --------------------------------------------------------- typo reporting --


def test_bad_scenario_engine_string_names_registry_entries(template):
    scenarios = [Scenario(name="fine"), Scenario(name="typo", engine="sceure")]
    with pytest.raises(ConfigurationError) as excinfo:
        template.run_many(scenarios, workers=2)
    message = str(excinfo.value)
    # names the failing scenario, promises nothing ran, and lists what exists
    assert "typo" in message
    assert "no scenario was executed" in message
    for registered in ("plaintext", "fixed", "secure", "naive-mpc", "sharded"):
        assert registered in message


def test_bad_template_engine_options_fail_at_resolve_with_scenario_name(template):
    # engine options resolve lazily: an invalid option on the template
    # surfaces at batch-resolve time, tagged with the scenario's name
    session = template.clone().engine("sharded", shards=-2)
    with pytest.raises(ConfigurationError, match="bad-shards"):
        session.run_many([Scenario(name="bad-shards", iterations=2)], workers=1)


def test_bad_program_string_in_scenario_lists_programs(template):
    with pytest.raises(ConfigurationError) as excinfo:
        template.run_many(
            [Scenario(name="typo-program", program="eisenberg")], workers=1
        )
    message = str(excinfo.value)
    assert "typo-program" in message
    assert "eisenberg-noe" in message and "elliott-golub-jackson" in message


# ----------------------------------------------------- refund on failure --


class CrashingReleasingEngine(Engine):
    """Releasing engine that dies before releasing anything: its eager
    pre-charge must come back — the budget pays for releases, not tries."""

    name = "test-crash-release"
    releases_output = True

    def execute(self, program, graph, iterations, config, accountant=None):
        raise ProtocolError("died before the output was noised")


@pytest.mark.parametrize("workers", [1, 2])
def test_failed_release_is_refunded_in_barriered_batch(template, tmp_path, workers):
    marker = str(tmp_path / "executions.log")
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(name="good", engine=MarkerEngine(marker), epsilon=0.2),
        Scenario(name="bad", engine=CrashingReleasingEngine(), epsilon=0.3),
    ]
    batch = template.run_many(scenarios, workers=workers, accountant=accountant)
    assert batch.by_name("good").ok and not batch.by_name("bad").ok
    # only the release that actually happened stays on the books
    assert accountant.spent == pytest.approx(0.2)
    assert batch.epsilon_charged == pytest.approx(0.2)
    assert [c.label for c in accountant.charges] == ["good"]


def test_every_release_failing_refunds_the_whole_batch(template):
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(name=f"bad-{i}", engine=CrashingReleasingEngine(), epsilon=0.2)
        for i in range(3)
    ]
    batch = template.run_many(scenarios, workers=1, accountant=accountant)
    assert not any(o.ok for o in batch)
    assert accountant.spent == 0.0
    assert batch.epsilon_charged == 0.0


def test_failed_release_is_refunded_in_streaming_batch(template, tmp_path):
    marker = str(tmp_path / "executions.log")
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(name="bad", engine=CrashingReleasingEngine(), epsilon=0.3),
        Scenario(name="good", engine=MarkerEngine(marker), epsilon=0.2),
    ]
    outcomes = list(
        template.run_many_iter(scenarios, workers=1, accountant=accountant)
    )
    assert {o.name: o.ok for o in outcomes} == {"bad": False, "good": True}
    assert accountant.spent == pytest.approx(0.2)


def test_streaming_failure_refund_does_not_double_on_abandon(template, tmp_path):
    marker = str(tmp_path / "executions.log")
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(name="bad", engine=CrashingReleasingEngine(), epsilon=0.3),
        Scenario(name="good", engine=MarkerEngine(marker), epsilon=0.2),
    ]
    stream = template.run_many_iter(scenarios, workers=1, accountant=accountant)
    assert accountant.spent == pytest.approx(0.5)  # eager pre-charge
    first = next(stream)
    assert first.name == "bad" and not first.ok
    # the completed-but-failed release was refunded the moment it landed
    assert accountant.spent == pytest.approx(0.2)
    stream.close()
    # abandoning refunds the never-run 'good' once — and 'bad' only once
    assert accountant.spent == 0.0


# --------------------------------------------------------- pool teardown --


class _RecordingPool:
    """Wraps a real pool to record which teardown path ran."""

    def __init__(self, pool, events):
        self._pool = pool
        self._events = events

    def imap_unordered(self, *args, **kwargs):
        return self._pool.imap_unordered(*args, **kwargs)

    def close(self):
        self._events.append("close")
        self._pool.close()

    def terminate(self):
        self._events.append("terminate")
        self._pool.terminate()

    def join(self):
        self._events.append("join")
        self._pool.join()


def _double(value):
    return 2 * value


def _recording_create_pool(monkeypatch):
    from repro.api import pool as pool_mod

    events = []
    real_create = pool_mod.create_pool
    monkeypatch.setattr(
        pool_mod,
        "create_pool",
        lambda n, **kw: _RecordingPool(real_create(n, **kw), events),
    )
    return pool_mod, events


def test_iter_in_pool_closes_gracefully_on_clean_exhaustion(monkeypatch):
    # terminate() SIGTERMs workers, which could catch user-supplied engine
    # code mid-write to its own external state; a fully-drained pool must
    # close and let workers exit on their own instead
    pool_mod, events = _recording_create_pool(monkeypatch)
    results = pool_mod.iter_in_pool(_double, [1, 2, 3], workers=2)
    assert sorted(value for _, value in results) == [2, 4, 6]
    assert "close" in events and "join" in events
    assert "terminate" not in events


def test_iter_in_pool_terminates_on_abandonment(monkeypatch):
    pool_mod, events = _recording_create_pool(monkeypatch)
    stream = pool_mod.iter_in_pool(_double, [1, 2, 3, 4], workers=2)
    next(stream)  # take one result, then walk away
    stream.close()
    assert "terminate" in events and "join" in events
    assert "close" not in events
