"""The unified StressTest facade: registries, presets, engines, parity.

The contract under test: every registered engine backend executes the same
vertex program through the one ``Engine`` protocol and agrees on the
pre-noise aggregate — ``fixed``, ``secure`` and ``naive-mpc`` bit-for-bit
(they all evaluate the same circuits), ``plaintext`` within quantization
error. Plus: config presets validate with actionable errors, iteration
auto-detection matches the trajectory, and the pre-1.1 top-level names
keep importing through deprecation shims.
"""

import warnings

import pytest

import repro
from repro import (
    DStressConfig,
    EisenbergNoeProgram,
    FinancialNetwork,
    PlaintextEngine,
    RunResult,
    StressTest,
    available_engines,
    available_presets,
    available_programs,
)
from repro.api import (
    Engine,
    NaiveMPCEngine,
    get_engine,
    get_program,
    register_engine,
)
from repro.core.convergence import convergence_index, has_converged
from repro.exceptions import ConfigurationError, ConvergenceError
from repro.mpc.fixedpoint import FixedPointFormat


@pytest.fixture(scope="module")
def en_network():
    from repro.finance import Bank

    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


@pytest.fixture(scope="module")
def secure_result(en_network):
    """One shared secure run through the facade (expensive: full MPC)."""
    return (
        StressTest(en_network)
        .program("eisenberg-noe")
        .engine("secure")
        .preset("demo")
        .privacy(epsilon=0.5)
        .seed(7)
        .degree_bound(2)
        .run(iterations=3)
    )


# ------------------------------------------------------------- registries --


def test_all_engine_families_registered():
    assert {"plaintext", "fixed", "secure", "naive-mpc"} <= set(available_engines())


def test_engine_aliases_resolve_to_same_backend():
    assert type(get_engine("float")) is type(get_engine("plaintext"))
    assert type(get_engine("dstress")) is type(get_engine("secure"))
    assert type(get_engine("naive")) is type(get_engine("naive-mpc"))


def test_unknown_engine_error_lists_registered():
    with pytest.raises(ConfigurationError, match="secure"):
        get_engine("sceure")  # typo


def test_program_registry_and_aliases():
    assert {"eisenberg-noe", "elliott-golub-jackson"} <= set(available_programs())
    assert get_program("en").name == "eisenberg-noe"
    assert get_program("egj").name == "elliott-golub-jackson"
    with pytest.raises(ConfigurationError, match="eisenberg-noe"):
        get_program("eisenberg")


def test_custom_engine_registration_is_addressable(en_network):
    class EchoEngine(Engine):
        name = "test-echo"

        def execute(self, program, graph, iterations, config, accountant=None):
            return RunResult(
                engine=self.name,
                program=program.name,
                aggregate=float(graph.num_vertices),
                trajectory=[float(graph.num_vertices)],
                iterations=iterations,
                wall_seconds=0.0,
            )

    register_engine("test-echo", EchoEngine)
    result = (
        StressTest(en_network).program("en").engine("test-echo").run(iterations=1)
    )
    assert result.engine == "test-echo"
    assert result.aggregate == 4.0
    with pytest.raises(ConfigurationError, match="already registered"):
        register_engine("test-echo", EchoEngine)
    # a refused registration leaves no partial state: the corrected retry works
    with pytest.raises(ConfigurationError, match="already registered"):
        register_engine("test-echo2", EchoEngine, aliases=("secure",))
    register_engine("test-echo2", EchoEngine, aliases=("test-echo2-alias",))
    # replace=True over an alias spelling beats the stale alias on lookup
    class LoudEchoEngine(EchoEngine):
        pass

    register_engine("test-echo2-alias", LoudEchoEngine, replace=True)
    assert type(get_engine("test-echo2-alias")) is LoudEchoEngine
    assert type(get_engine("test-echo2")) is EchoEngine


# ---------------------------------------------------------------- presets --


def test_available_presets():
    assert available_presets() == ["demo", "paper", "production"]


def test_demo_preset_values():
    config = DStressConfig.preset("demo")
    assert config.group.name == "toy-64"
    assert config.block_size == 3
    assert config.output_epsilon == 0.5


def test_paper_preset_matches_evaluation_regime():
    config = DStressConfig.preset("paper")
    assert config.block_size == 8
    assert config.output_epsilon == 0.23


def test_unknown_preset_is_actionable():
    with pytest.raises(ConfigurationError, match="demo, paper, production"):
        DStressConfig.preset("laptop")


def test_preset_overrides_are_validated():
    assert DStressConfig.preset("demo", output_epsilon=0.1).output_epsilon == 0.1
    with pytest.raises(ConfigurationError, match="epsilon"):
        DStressConfig.preset("demo", output_epsilon=-1.0)


def test_with_updates_rejects_unknown_fields():
    config = DStressConfig()
    assert config.with_updates(seed=9).seed == 9
    with pytest.raises(ConfigurationError, match="output_epsilon"):
        config.with_updates(epsilon=0.5)  # the field is called output_epsilon


# ----------------------------------------------------- builder validation --


def test_missing_program_is_actionable(en_network):
    with pytest.raises(ConfigurationError, match="eisenberg-noe"):
        StressTest(en_network).run(iterations=2)


def test_missing_network_is_actionable():
    with pytest.raises(ConfigurationError, match="FinancialNetwork"):
        StressTest().program("en").run(iterations=2)


def test_custom_program_requires_explicit_graph(en_network):
    program = EisenbergNoeProgram(FixedPointFormat(16, 8))
    with pytest.raises(ConfigurationError, match="graph"):
        StressTest(en_network).program(program).run(iterations=2)
    graph = en_network.to_en_graph(degree_bound=2)
    result = StressTest(en_network).program(program).graph(graph).run(iterations=2)
    assert result.aggregate == pytest.approx(4.6667, abs=1e-3)


def test_program_config_format_mismatch_is_actionable(en_network):
    program = EisenbergNoeProgram(FixedPointFormat(20, 10))
    graph = en_network.to_en_graph(degree_bound=2)
    with pytest.raises(ConfigurationError, match="fixed-point format"):
        StressTest(en_network).program(program).graph(graph).run(iterations=2)


def test_preset_and_config_conflict_is_refused(en_network):
    session = (
        StressTest(en_network)
        .program("en")
        .preset("demo")
        .configure(DStressConfig())
    )
    with pytest.raises(ConfigurationError, match="preset"):
        session.run(iterations=2)


def test_bad_iterations_values(en_network):
    session = StressTest(en_network).program("en")
    with pytest.raises(ConfigurationError, match="auto"):
        session.run(iterations="eventually")
    with pytest.raises(ConfigurationError, match="at least 1"):
        session.run(iterations=0)
    with pytest.raises(ConfigurationError, match="positive int"):
        session.run(iterations=2.5)


def test_unknown_config_override_is_actionable(en_network):
    with pytest.raises(ConfigurationError, match="collusion_bound"):
        StressTest(en_network).program("en").configure(colusion_bound=3).run(
            iterations=2
        )


# ------------------------------------------------------- facade execution --


def test_plaintext_facade_matches_direct_engine(en_network):
    direct = PlaintextEngine(EisenbergNoeProgram(FixedPointFormat(16, 8))).run_float(
        en_network.to_en_graph(degree_bound=2), iterations=3
    )
    facade = (
        StressTest(en_network)
        .program("eisenberg-noe")
        .engine("plaintext")
        .degree_bound(2)
        .run(iterations=3)
    )
    assert facade.aggregate == direct.aggregate
    assert facade.trajectory == direct.trajectory
    assert facade.final_states == direct.final_states
    assert facade.raw is not None
    assert facade.epsilon is None and not facade.releases_output


def test_auto_iterations_matches_trajectory_convergence(en_network):
    result = (
        StressTest(en_network).program("en").engine("plaintext").run(iterations="auto")
    )
    assert result.converged(tolerance=1e-9)
    # the chosen count is exactly the probe trajectory's settle point
    probe = PlaintextEngine(EisenbergNoeProgram(FixedPointFormat(16, 8))).run_float(
        en_network.to_en_graph(), iterations=8
    )
    assert result.iterations == probe.converged_at()


def test_auto_iterations_surfaces_non_convergence(en_network):
    with pytest.raises(ConvergenceError, match="max_iterations"):
        StressTest(en_network).program("en").run(
            iterations="auto", tolerance=0.0, max_iterations=1
        )


def test_network_stress_test_entry_point(en_network):
    session = en_network.stress_test()
    assert isinstance(session, StressTest)
    result = session.program("en").run(iterations=2)
    assert result.program == "eisenberg-noe"


# ---------------------------------------------------------- engine parity --


def test_engine_parity_pre_noise(en_network, secure_result):
    """All engine families compute the same function on the same graph."""
    template = StressTest(en_network).program("en").preset("demo").degree_bound(2)
    floats = template.clone().engine("plaintext").run(iterations=3)
    fixed = template.clone().engine("fixed").run(iterations=3)
    naive = (
        template.clone()
        .engine(NaiveMPCEngine(estimate_cost=False))
        .run(iterations=3)
    )
    # circuit-evaluating backends agree bit for bit
    assert fixed.exact_aggregate == secure_result.pre_noise_aggregate
    assert fixed.exact_aggregate == naive.pre_noise_aggregate
    assert fixed.trajectory == secure_result.trajectory
    # float oracle within quantization error of the circuits
    assert floats.aggregate == pytest.approx(fixed.aggregate, abs=0.1)
    # releasing engines actually noised their headline number
    assert naive.aggregate == naive.pre_noise_aggregate + naive.noise_raw * 2**-8
    assert secure_result.noise_raw == round(
        (secure_result.aggregate - secure_result.pre_noise_aggregate) * 2**8
    )


def test_secure_result_shape(secure_result):
    assert secure_result.engine == "secure"
    assert secure_result.releases_output and secure_result.epsilon == 0.5
    assert secure_result.traffic is not None and secure_result.phases is not None
    assert secure_result.extras["transfer_count"] > 0
    assert secure_result.iterations == 3
    # the simulation-only trajectory reaches the pre-noise aggregate
    assert secure_result.trajectory[-1] == secure_result.pre_noise_aggregate
    assert secure_result.raw.converged_at(tolerance=1e-9) is not None
    assert "secure" in secure_result.summary()


# ------------------------------------------------------------- convergence --


def test_convergence_index_semantics():
    assert convergence_index([1.0, 2.0, 2.0]) == 2
    assert convergence_index([1.0, 2.0, 3.0]) is None
    assert convergence_index([]) is None
    assert convergence_index([1.0, 1.5, 1.6], tolerance=0.2) == 2
    assert has_converged([1.0, 2.0, 2.0]) and not has_converged([5.0])
    with pytest.raises(ConfigurationError):
        convergence_index([1.0, 1.0], tolerance=-1.0)


def test_plaintext_run_converged_at(en_network):
    run = PlaintextEngine(EisenbergNoeProgram(FixedPointFormat(16, 8))).run_float(
        en_network.to_en_graph(), iterations=8
    )
    settle = run.converged_at()
    assert settle is not None
    assert run.trajectory[settle] == pytest.approx(run.aggregate)


# ------------------------------------------------------- deprecation shims --


def test_deprecated_top_level_names_still_import():
    with pytest.warns(DeprecationWarning, match="RunResult"):
        shim = getattr(repro, "PlaintextRun")
    from repro.core.engine import PlaintextRun

    assert shim is PlaintextRun
    with pytest.warns(DeprecationWarning, match="RunResult"):
        shim = getattr(repro, "SecureRunResult")
    from repro.core.secure_engine import SecureRunResult

    assert shim is SecureRunResult


def test_pre_existing_public_imports_unchanged():
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # none of these may warn
        from repro import (  # noqa: F401
            Bank,
            DStressConfig,
            DistributedGraph,
            DollarPrivacySpec,
            EisenbergNoeProgram,
            ElliottGolubJacksonProgram,
            FinancialNetwork,
            FixedPointFormat,
            NO_OP_MESSAGE,
            PlaintextEngine,
            PrivacyAccountant,
            ProgramSpec,
            SecureEngine,
            VertexProgram,
            VertexView,
            clearing_vector,
            egj_fixpoint,
        )

    assert repro.__version__ == "1.1.0"
