"""Streaming batch runs and the scenario-level result cache.

Streaming must change *when* outcomes arrive, never *what* they contain:
every streamed outcome is bit-identical to its barriered sibling, at any
worker count, in any completion order. The cache must only ever err
toward a miss: identical (network, config, program, engine + options,
seed) tuples reuse the prior result — and skip the accountant — while
anything unfingerprintable always executes.
"""

import math

import pytest

from repro import StressTest
from repro.api import AsyncEngine, Scenario, ScenarioCache, run_fingerprint
from repro.core.transport import InMemoryTransport
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, PrivacyBudgetExceeded
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import CorePeripheryParams, core_periphery_network
from repro.privacy.budget import PrivacyAccountant

SEED = 123


@pytest.fixture(scope="module")
def network():
    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    return apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))


@pytest.fixture
def template(network):
    return StressTest(network).program("eisenberg-noe").seed(SEED)


def _sweep(count, iterations=3):
    return [Scenario(f"s{i}", seed=i, iterations=iterations) for i in range(count)]


# ---------------------------------------------------------------- streaming --


def test_streaming_outcomes_are_ordering_independent(template):
    """Whatever order workers finish in, the streamed set equals the
    barriered batch bit-for-bit."""
    scenarios = _sweep(6)
    barriered = {o.name: o for o in template.run_many(scenarios, workers=1)}
    streamed = list(template.run_many_iter(scenarios, workers=3))
    assert sorted(o.name for o in streamed) == sorted(barriered)
    for outcome in streamed:
        assert outcome.ok
        sibling = barriered[outcome.name]
        assert outcome.result.aggregate == sibling.result.aggregate
        assert outcome.result.trajectory == sibling.result.trajectory
        assert outcome.result.final_states == sibling.result.final_states


def test_streaming_inline_yields_in_input_order(template):
    scenarios = _sweep(4)
    names = [o.name for o in template.run_many_iter(scenarios, workers=1)]
    assert names == [s.name for s in scenarios]


def test_streaming_is_lazy_but_fails_eagerly(template):
    # a bad scenario refuses the whole batch at call time, before any
    # outcome is consumed — same contract as the barriered path
    with pytest.raises(ConfigurationError, match="failed to resolve"):
        template.run_many_iter([Scenario("typo", engine="sahrded")])
    # an unaffordable batch is refused before the first next() too
    accountant = PrivacyAccountant(epsilon_max=0.05)
    scenarios = [
        Scenario(
            "too-expensive",
            engine="naive-mpc",
            engine_options={"estimate_cost": False},
            epsilon=0.1,
            iterations=2,
        )
    ]
    with pytest.raises(PrivacyBudgetExceeded):
        template.run_many_iter(scenarios, accountant=accountant)
    assert accountant.spent == 0.0


def test_streaming_failure_does_not_block_other_outcomes(template, network):
    from repro.core.transport import FaultInjectingTransport

    src, dst = next(iter(network.to_en_graph(None).edges()))
    faulty = AsyncEngine(
        tasks=2, transport=FaultInjectingTransport(drop=[(src, dst, 0)])
    )
    scenarios = [
        Scenario("ok-1", iterations=2),
        Scenario("boom", iterations=2, engine=faulty),
        Scenario("ok-2", iterations=2, seed=9),
    ]
    outcomes = list(template.run_many_iter(scenarios, workers=2))
    by_name = {o.name: o for o in outcomes}
    assert sorted(by_name) == ["boom", "ok-1", "ok-2"]
    assert by_name["ok-1"].ok and by_name["ok-2"].ok
    assert not by_name["boom"].ok
    assert "boom" in by_name["boom"].error and "dropped" in by_name["boom"].error


# -------------------------------------------------------------------- cache --


def test_cache_reuses_identical_scenarios_across_batches(template):
    cache = ScenarioCache()
    first = template.run_many(_sweep(3), cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 3)
    # same scenarios under new labels: all hits, results bit-identical
    relabeled = [Scenario(f"other-{i}", seed=i, iterations=3) for i in range(3)]
    second = template.run_many(relabeled, cache=cache)
    assert (second.cache_hits, second.cache_misses) == (3, 0)
    for i in range(3):
        hit = second.by_name(f"other-{i}")
        assert hit.cached
        assert hit.result.aggregate == first.by_name(f"s{i}").result.aggregate
        assert hit.result.trajectory == first.by_name(f"s{i}").result.trajectory
    assert "cache=3h/0m" in second.summary()


def test_cache_misses_on_any_input_delta(template):
    cache = ScenarioCache()
    base = Scenario("base", seed=1, iterations=3)
    template.run_many([base], cache=cache)
    deltas = [
        Scenario("new-seed", seed=2, iterations=3),
        Scenario("new-iters", seed=1, iterations=4),
        Scenario("new-epsilon", seed=1, iterations=3, epsilon=0.4),
        Scenario(
            "new-engine", seed=1, iterations=3, engine="sharded",
            engine_options={"shards": 2},
        ),
    ]
    result = template.run_many(deltas, cache=cache)
    assert (result.cache_hits, result.cache_misses) == (0, 4)


def test_in_batch_duplicates_execute_once(template):
    scenarios = [
        Scenario("primary", seed=4, iterations=3),
        Scenario("duplicate", seed=4, iterations=3),
        Scenario("different", seed=5, iterations=3),
    ]
    batch = template.run_many(scenarios, cache=True)
    assert (batch.cache_hits, batch.cache_misses) == (1, 2)
    dup = batch.by_name("duplicate")
    assert dup.cached
    assert dup.result.aggregate == batch.by_name("primary").result.aggregate
    assert not batch.by_name("different").cached


def test_failed_duplicates_are_not_hits(template):
    from repro.api import Engine
    from repro.exceptions import DStressError

    class FailingEngine(Engine):
        name = "always-fails"

        def execute(self, program, graph, iterations, config, accountant=None):
            raise DStressError("engine exploded")

    engine = FailingEngine()
    batch = template.run_many(
        [
            Scenario("first", engine=engine, iterations=2),
            Scenario("second", engine=engine, iterations=2),
        ],
        cache=True,
    )
    # the duplicate reports the failure under its own name, is NOT marked
    # cached, and registers no hit — failures are never reused as successes
    assert not batch.by_name("first").ok
    second = batch.by_name("second")
    assert not second.ok and not second.cached
    # the error names THIS scenario (the invariant every failed outcome
    # keeps), while still attributing the run that actually failed
    assert "'second'" in second.error and "'first'" in second.error
    assert "engine exploded" in second.error
    assert batch.cache_hits == 0


def test_abandoned_stream_refunds_uncompleted_releases(template):
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(
            f"release-{i}",
            engine="naive-mpc",
            engine_options={"estimate_cost": False},
            epsilon=0.1,
            seed=i,
            iterations=2,
        )
        for i in range(4)
    ]
    stream = template.run_many_iter(scenarios, accountant=accountant)
    # the whole batch is pre-charged (eager refusal contract)...
    assert accountant.spent == pytest.approx(0.4)
    first = next(stream)
    assert first.ok
    stream.close()
    # ...but abandoning it refunds the releases that never happened
    assert accountant.spent == pytest.approx(0.1)
    # a stream that is never even started refunds everything on close
    untouched = template.run_many_iter(scenarios, accountant=accountant)
    assert accountant.spent == pytest.approx(0.1 + 0.4)
    untouched.close()
    assert accountant.spent == pytest.approx(0.1)
    # a fully-consumed stream keeps every charge
    stream2 = template.run_many_iter(scenarios, accountant=accountant)
    assert sum(1 for _ in stream2) == 4
    assert accountant.spent == pytest.approx(0.1 + 0.4)


def test_pool_failure_refunds_barriered_batch(template):
    # the pool itself failing (here: an unpicklable payload with forked
    # workers) must refund every pre-charge — nothing was released
    from repro.api import Engine

    class UnpicklableReleasingEngine(Engine):
        name = "unpicklable-releasing"
        releases_output = True

        def __init__(self):
            self.hook = lambda: None  # lambdas cannot pickle

        def execute(self, program, graph, iterations, config, accountant=None):
            raise AssertionError("must never execute in-process")

    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(f"s{i}", engine=UnpicklableReleasingEngine(), epsilon=0.1, iterations=2)
        for i in range(2)
    ]
    with pytest.raises(Exception):
        template.run_many(scenarios, workers=2, accountant=accountant)
    assert accountant.spent == 0.0


def test_refused_batch_rolls_back_cache_counters(template):
    cache = ScenarioCache()
    template.run_many([Scenario("warm", seed=2, iterations=3)], cache=cache)
    hits, misses = cache.hits, cache.misses
    accountant = PrivacyAccountant(epsilon_max=0.05)
    scenarios = [
        Scenario("warm-dup", seed=2, iterations=3),
        Scenario(
            "unaffordable",
            engine="naive-mpc",
            engine_options={"estimate_cost": False},
            epsilon=0.1,
            iterations=2,
        ),
    ]
    with pytest.raises(PrivacyBudgetExceeded):
        template.run_many(scenarios, accountant=accountant, cache=cache)
    # nothing ran, so the shared cache's telemetry must not remember it
    assert (cache.hits, cache.misses) == (hits, misses)


def test_cache_hits_skip_the_accountant(template):
    cache = ScenarioCache()
    accountant = PrivacyAccountant(epsilon_max=math.log(2))
    scenarios = [
        Scenario(
            "release",
            engine="naive-mpc",
            engine_options={"estimate_cost": False},
            epsilon=0.1,
            iterations=2,
        )
    ]
    first = template.run_many(scenarios, accountant=accountant, cache=cache)
    assert first.epsilon_charged == pytest.approx(0.1)
    assert accountant.spent == pytest.approx(0.1)
    # the identical release replays the published value: no fresh budget
    second = template.run_many(scenarios, accountant=accountant, cache=cache)
    assert second.cache_hits == 1
    assert second.epsilon_charged == 0.0
    assert accountant.spent == pytest.approx(0.1)
    assert (
        second.by_name("release").result.aggregate
        == first.by_name("release").result.aggregate
    )


def test_unfingerprintable_engines_never_hit(template):
    # a live Transport instance has no stable content token, so the run
    # must execute every time — a cache may only ever err toward a miss
    cache = ScenarioCache()
    engine = AsyncEngine(tasks=2, transport=InMemoryTransport())
    scenarios = [Scenario("opaque", engine=engine, iterations=2)]
    for _ in range(2):
        batch = template.run_many(scenarios, cache=cache)
        assert batch.cache_hits == 0
    assert cache.misses == 2
    assert len(cache) == 0


def test_abandoned_stream_rolls_back_cache_telemetry(template):
    cache = ScenarioCache()
    stream = template.run_many_iter(_sweep(4), workers=1, cache=cache)
    first = next(stream)
    assert first.ok
    stream.close()
    # only the one scenario that executed stays counted as a miss
    assert (cache.hits, cache.misses) == (0, 1)
    # a cached outcome that WAS delivered keeps its hit on abandon...
    stream = template.run_many_iter(
        [Scenario("again-0", seed=0, iterations=3), Scenario("fresh", seed=50, iterations=3)],
        workers=1,
        cache=cache,
    )
    delivered = next(stream)
    assert delivered.cached
    stream.close()
    assert (cache.hits, cache.misses) == (1, 1)
    # ...and an in-batch duplicate abandoned before delivery counts no hit
    stream = template.run_many_iter(
        [Scenario("p", seed=60, iterations=3), Scenario("q", seed=60, iterations=3)],
        workers=1,
        cache=cache,
    )
    primary = next(stream)
    assert primary.ok and not primary.cached
    stream.close()  # the duplicate 'q' was cloned but never delivered
    assert (cache.hits, cache.misses) == (1, 2)


def test_streaming_with_cache_yields_hits_immediately(template):
    cache = ScenarioCache()
    template.run_many(_sweep(2), cache=cache)
    mixed = [
        Scenario("hit-a", seed=0, iterations=3),
        Scenario("fresh", seed=77, iterations=3),
        Scenario("hit-b", seed=1, iterations=3),
    ]
    outcomes = list(template.run_many_iter(mixed, workers=2, cache=cache))
    # cache hits arrive before any executed scenario completes
    assert [o.name for o in outcomes[:2]] == ["hit-a", "hit-b"]
    assert all(o.cached for o in outcomes[:2])
    assert outcomes[2].name == "fresh" and not outcomes[2].cached


def test_cache_entries_are_isolated_from_consumer_mutation(template):
    cache = ScenarioCache()
    scenarios = [Scenario("base", seed=3, iterations=3)]
    first = template.run_many(scenarios, cache=cache)
    pristine = list(first.by_name("base").result.trajectory)
    # vandalize both the original result and a cache hit's result
    first.by_name("base").result.trajectory[0] = -1e9
    hit_one = template.run_many([Scenario("hit-1", seed=3, iterations=3)], cache=cache)
    hit_one.by_name("hit-1").result.extras["note"] = 1.0
    hit_one.by_name("hit-1").result.trajectory[-1] = -2e9
    # the next hit still sees the golden copy
    hit_two = template.run_many([Scenario("hit-2", seed=3, iterations=3)], cache=cache)
    result = hit_two.by_name("hit-2").result
    assert result.trajectory == pristine
    assert "note" not in result.extras
    # in-batch duplicates are isolated from each other too
    batch = template.run_many(
        [Scenario("p", seed=6, iterations=3), Scenario("q", seed=6, iterations=3)],
        cache=True,
    )
    batch.by_name("p").result.trajectory[0] = -3e9
    assert batch.by_name("q").result.trajectory[0] != -3e9


def test_streamed_duplicates_isolated_from_primary_mutation(template):
    # the duplicate's copy must be taken BEFORE the primary is handed to
    # the consumer — mutating the primary mid-stream must not bleed over
    stream = template.run_many_iter(
        [Scenario("p", seed=5, iterations=3), Scenario("q", seed=5, iterations=3)],
        cache=True,
    )
    primary = next(stream)
    assert primary.name == "p"
    pristine = list(primary.result.trajectory)
    primary.result.trajectory.clear()
    duplicate = next(stream)
    assert duplicate.name == "q" and duplicate.cached
    assert duplicate.result.trajectory == pristine


def test_cache_argument_validation(template, tmp_path):
    with pytest.raises(ConfigurationError, match="cache must be"):
        template.run_many(_sweep(1), cache=42)
    # a string is a directory path now: it builds the persistent cache
    batch = template.run_many(_sweep(1), cache=str(tmp_path / "store"))
    assert batch.cache_misses == 1
    assert (tmp_path / "store").is_dir()


def test_impostor_engine_class_never_hits_the_real_ones_cache(template):
    # same registry name, no constructor options, different class: the
    # fingerprint must differ — a wrong hit would silently substitute the
    # builtin's result for the impostor's (cache may only err toward miss)
    from repro.api import Engine

    class ImpostorEngine(Engine):
        name = "plaintext"

        def execute(self, program, graph, iterations, config, accountant=None):
            raise AssertionError("the cache should not have let this run vanish")

    cache = ScenarioCache()
    template.run_many([Scenario("real", seed=1, iterations=3)], cache=cache)
    resolved_real = template.clone().resolve(3, label="x")
    impostor_session = template.clone().engine(ImpostorEngine())
    resolved_fake = impostor_session.resolve(3, label="x")
    assert run_fingerprint(resolved_real) != run_fingerprint(resolved_fake)


def test_fingerprint_semantics(template):
    resolved_a = template.clone().resolve(3, label="a")
    resolved_b = template.clone().resolve(3, label="b")
    # labels are excluded: renaming must not defeat the cache
    assert run_fingerprint(resolved_a) == run_fingerprint(resolved_b)
    resolved_c = template.clone().seed(999).resolve(3, label="a")
    assert run_fingerprint(resolved_a) != run_fingerprint(resolved_c)
    # auto-iteration specs fingerprint their tolerance/cap
    auto_tight = template.clone().resolve("auto", tolerance=1e-6, label="a")
    auto_loose = template.clone().resolve("auto", tolerance=1e-2, label="a")
    assert run_fingerprint(auto_tight) != run_fingerprint(auto_loose)
