"""The async engine: options, WAN metering, overlap, batch integration.

Bit-identity against ``plaintext`` at every task count is asserted by
the cross-engine parity matrix (``test_engine_parity_matrix.py``); this
file covers everything around it — option validation through the
registry, the simulated-WAN traffic accounting, the sequential
(``overlap=False``) baseline, transport faults surfacing as
scenario-named batch errors, and the worker planner accounting for task
concurrency the way it accounts for shards.
"""

import pytest

from repro import StressTest
from repro.api import AsyncEngine, Scenario, get_engine
from repro.api.pool import cpu_budget, plan_workers
from repro.core.transport import FaultInjectingTransport, InMemoryTransport
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, TransportError
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import CorePeripheryParams, core_periphery_network

SEED = 123
ITERATIONS = 4


@pytest.fixture(scope="module")
def network():
    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    return apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))


@pytest.fixture(scope="module")
def reference(network):
    return (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("plaintext")
        .seed(SEED)
        .run(iterations=ITERATIONS)
    )


def _session(network, **engine_options):
    return (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("async", **engine_options)
        .seed(SEED)
    )


# ------------------------------------------------------------------ options --


def test_engine_options_validated_through_registry():
    with pytest.raises(ConfigurationError, match="positive int"):
        get_engine("async", tasks=0)
    with pytest.raises(ConfigurationError, match="positive int"):
        AsyncEngine(tasks=True)
    with pytest.raises(ConfigurationError, match="Transport instance or a name"):
        AsyncEngine(transport=3.14)
    with pytest.raises(ConfigurationError, match="rejected options"):
        get_engine("async", shards=4)  # sharded's option, not async's
    # aliases resolve
    assert isinstance(get_engine("asyncio"), AsyncEngine)
    assert isinstance(get_engine("overlapped", tasks=2), AsyncEngine)


def test_runs_inside_an_already_running_event_loop(network, reference):
    # notebook kernels execute user code on a running loop; the engine
    # must still work (and stay bit-identical) from that context
    import asyncio

    async def in_loop():
        return _session(network, tasks=4).run(iterations=ITERATIONS)

    result = asyncio.run(in_loop())
    assert result.trajectory == reference.trajectory
    assert result.final_states == reference.final_states


def test_unknown_transport_name_fails_at_construction(network):
    # a typo'd transport must refuse at engine construction so a batch
    # aborts at resolve time, before compute or budget is spent
    with pytest.raises(ConfigurationError, match="unknown transport"):
        AsyncEngine(transport="avian")
    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    with pytest.raises(ConfigurationError, match="failed to resolve"):
        template.run_many(
            [Scenario("typo", engine="async", engine_options={"transport": "avian"})]
        )


# -------------------------------------------------------------- wan metering --


def test_wan_run_is_bit_identical_and_metered(network, reference):
    result = _session(network, tasks=4, transport="wan").run(iterations=ITERATIONS)
    assert result.trajectory == reference.trajectory
    assert result.aggregate == reference.aggregate
    assert result.final_states == reference.final_states
    # traffic: every real edge carries one fixed-point word per round
    graph = network.to_en_graph(None)
    word_bytes = 16 / 8.0  # default FixedPointFormat(16, 8)
    expected = graph.num_edges * ITERATIONS * word_bytes
    assert result.traffic is not None
    assert result.traffic.total_bytes_sent == pytest.approx(expected)
    assert result.traffic.num_links == graph.num_edges
    assert result.extras["wan_bytes"] == pytest.approx(expected)
    assert result.extras["messages_sent"] == graph.num_edges * ITERATIONS


def test_reused_transport_instance_reports_per_run_deltas(network):
    from repro.core.transport import SimulatedWanTransport

    bus = SimulatedWanTransport(latency_seconds=0.0, message_bytes=2.0, realtime=False)
    engine = AsyncEngine(tasks=4, transport=bus)
    session = StressTest(network).program("eisenberg-noe").engine(engine).seed(SEED)
    first = session.run(iterations=ITERATIONS)
    second = session.run(iterations=ITERATIONS)
    # the bus's meter is cumulative, but each result reports its own run
    assert second.extras["wan_bytes"] == first.extras["wan_bytes"]
    assert bus.meter.total_bytes_sent == pytest.approx(2 * first.extras["wan_bytes"])


def test_sharded_wan_transport_is_observable(network, reference):
    result = (
        StressTest(network)
        .program("eisenberg-noe")
        .engine("sharded", shards=1, transport="wan")
        .seed(SEED)
        .run(iterations=ITERATIONS)
    )
    assert result.trajectory == reference.trajectory
    graph = network.to_en_graph(None)
    expected = graph.num_edges * ITERATIONS * (16 / 8.0)
    assert result.traffic is not None
    assert result.extras["wan_bytes"] == pytest.approx(expected)


def test_wan_latency_accounts_simulated_seconds(network, reference):
    result = (
        _session(network, tasks=8, transport="wan")
        .configure(wan_latency_seconds=0.0005, wan_jitter=0.25)
        .run(iterations=ITERATIONS)
    )
    # values never move, only the clock and the meters
    assert result.trajectory == reference.trajectory
    assert result.extras["simulated_seconds"] > 0.0


def test_overlap_false_is_the_sequential_baseline(network, reference):
    result = _session(network, overlap=False).run(iterations=ITERATIONS)
    assert result.trajectory == reference.trajectory
    assert result.final_states == reference.final_states
    assert result.extras["overlap"] == 0.0


# ------------------------------------------------------------------- faults --


def test_transport_fault_surfaces_as_scenario_named_batch_error(network):
    graph = network.to_en_graph(None)
    src, dst = next(iter(graph.edges()))
    faulty = AsyncEngine(tasks=4, transport=FaultInjectingTransport(drop=[(src, dst, 1)]))
    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    batch = template.run_many(
        [
            Scenario("dropped-link", engine=faulty, iterations=ITERATIONS),
            Scenario("healthy", iterations=ITERATIONS),
        ]
    )
    failed = batch.by_name("dropped-link")
    assert not failed.ok
    assert "dropped-link" in failed.error  # scenario-named, not a hang
    assert "TransportError" in failed.error
    assert f"{src}->{dst}" in failed.error
    assert batch.by_name("healthy").ok


def test_duplicate_fault_raises_directly(network):
    graph = network.to_en_graph(None)
    src, dst = next(iter(graph.edges()))
    engine = AsyncEngine(
        tasks=2, transport=FaultInjectingTransport(duplicate=[(src, dst, 0)])
    )
    session = StressTest(network).program("eisenberg-noe").engine(engine).seed(SEED)
    with pytest.raises(TransportError, match="duplicate delivery"):
        session.run(iterations=2)


# ---------------------------------------------------------- worker planning --


def test_intra_run_width_covers_tasks_and_shards():
    assert AsyncEngine(tasks=6).intra_run_width == 6
    assert get_engine("sharded", shards=3).intra_run_width == 3
    assert get_engine("plaintext").intra_run_width == 1
    # the sequential schedule runs one pipeline: the planner must not be
    # throttled by a task count that never deploys
    assert AsyncEngine(tasks=16, overlap=False).intra_run_width == 1


def test_intra_run_width_rejects_non_int_declarations():
    # a misdeclared width must surface, not silently mean "serial"
    from repro.api import Engine

    class Weird(Engine):
        name = "weird"

        def __init__(self, tasks):
            self.tasks = tasks

        def execute(self, program, graph, iterations, config, accountant=None):
            raise AssertionError

    for bad in ("16", 2.5, True, 0):
        with pytest.raises(ConfigurationError, match="shard width / task"):
            Weird(bad).intra_run_width


def test_invalid_width_rejected_even_in_mixed_batches(network):
    # a bad declaration must not hide behind another scenario's valid
    # wider one (max() would mask it if plan_workers saw only the max)
    class BadWidthEngine(AsyncEngine):
        name = "bad-width"
        intra_run_width = 0

    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    scenarios = [
        Scenario("bad", engine=BadWidthEngine(), iterations=2),
        Scenario("wide", engine="sharded", engine_options={"shards": 4}, iterations=2),
    ]
    with pytest.raises(ConfigurationError, match="shard width"):
        template.run_many(scenarios, workers=2)


def test_plan_workers_caps_async_batches_like_sharded_ones(network):
    # a wide async batch is CPU-capped exactly as a sharded one would be
    requested = 4 * cpu_budget()
    tasks = 4 * cpu_budget()
    assert plan_workers(requested, tasks, shard_width=8) == cpu_budget()

    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    scenarios = [
        Scenario(f"s{i}", engine="async", engine_options={"tasks": 8}, iterations=2)
        for i in range(2 * cpu_budget() + 2)
    ]
    batch = template.run_many(scenarios, workers=2 * cpu_budget() + 2)
    assert batch.workers <= cpu_budget()
    assert all(outcome.ok for outcome in batch)


def test_async_inside_batch_workers_stays_bit_identical(network, reference):
    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    batch = template.run_many(
        [
            Scenario("async-a", engine="async", engine_options={"tasks": 4}),
            Scenario("async-b", engine="async", engine_options={"tasks": 16}),
        ],
        workers=2,
    )
    assert all(outcome.ok for outcome in batch)
    a, b = batch.by_name("async-a"), batch.by_name("async-b")
    # task count must not change a single bit, even through pool workers
    assert a.result.trajectory == b.result.trajectory
    assert a.result.aggregate == b.result.aggregate
