"""Tests for the plaintext reference engine and aggregation helpers."""

import pytest

from repro.core.aggregation import (
    AggregationPlan,
    partial_sum_width,
    plan_groups,
    reshare_word,
)
from repro.core.engine import PlaintextEngine
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram, clearing_vector, egj_fixpoint
from repro.mpc.fixedpoint import FixedPointFormat
from repro.sharing import xor_all


class TestFloatEngine:
    def test_en_matches_exact_solver(self, small_en_network, fmt):
        graph = small_en_network.to_en_graph(degree_bound=2)
        run = PlaintextEngine(EisenbergNoeProgram(fmt)).run_float(graph, iterations=6)
        exact = clearing_vector(small_en_network).total_shortfall
        assert run.aggregate == pytest.approx(exact, abs=1e-9)

    def test_egj_matches_exact_solver(self, small_egj_network, fmt):
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        run = PlaintextEngine(ElliottGolubJacksonProgram(fmt)).run_float(graph, iterations=6)
        exact = egj_fixpoint(small_egj_network, iterations=6).total_shortfall
        assert run.aggregate == pytest.approx(exact, abs=1e-9)

    def test_trajectory_length(self, small_en_network, fmt):
        graph = small_en_network.to_en_graph(degree_bound=2)
        run = PlaintextEngine(EisenbergNoeProgram(fmt)).run_float(graph, iterations=4)
        assert len(run.trajectory) == 5  # n steps + final computation

    def test_en_shortfall_monotone_nondecreasing(self, small_en_network, fmt):
        """Fictitious default: shortfall only grows across iterations."""
        graph = small_en_network.to_en_graph(degree_bound=2)
        run = PlaintextEngine(EisenbergNoeProgram(fmt)).run_float(graph, iterations=8)
        for earlier, later in zip(run.trajectory, run.trajectory[1:]):
            assert later >= earlier - 1e-9

    def test_zero_iterations_runs_final_step(self, small_en_network, fmt):
        graph = small_en_network.to_en_graph(degree_bound=2)
        run = PlaintextEngine(EisenbergNoeProgram(fmt)).run_float(graph, iterations=0)
        assert len(run.trajectory) == 1


class TestFixedEngine:
    def test_en_fixed_close_to_float(self, small_en_network, fmt):
        graph = small_en_network.to_en_graph(degree_bound=2)
        engine = PlaintextEngine(EisenbergNoeProgram(fmt))
        float_run = engine.run_float(graph, iterations=5)
        fixed_run = engine.run_fixed(graph, iterations=5)
        assert fixed_run.aggregate == pytest.approx(float_run.aggregate, abs=0.2)

    def test_egj_fixed_close_to_float(self, small_egj_network, fmt):
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        engine = PlaintextEngine(ElliottGolubJacksonProgram(fmt))
        float_run = engine.run_float(graph, iterations=5)
        fixed_run = engine.run_fixed(graph, iterations=5)
        assert fixed_run.aggregate == pytest.approx(float_run.aggregate, abs=0.3)

    def test_fixed_engine_deterministic(self, small_en_network, fmt):
        graph = small_en_network.to_en_graph(degree_bound=2)
        engine = PlaintextEngine(EisenbergNoeProgram(fmt))
        assert (
            engine.run_fixed(graph, 4).aggregate == engine.run_fixed(graph, 4).aggregate
        )

    def test_higher_precision_reduces_error(self, small_en_network):
        graph = small_en_network.to_en_graph(degree_bound=2)
        coarse = PlaintextEngine(EisenbergNoeProgram(FixedPointFormat(12, 4)))
        fine = PlaintextEngine(EisenbergNoeProgram(FixedPointFormat(20, 12)))
        exact = clearing_vector(small_en_network).total_shortfall
        err_coarse = abs(coarse.run_fixed(graph, 5).aggregate - exact)
        err_fine = abs(fine.run_fixed(graph, 5).aggregate - exact)
        assert err_fine <= err_coarse


class TestAggregationHelpers:
    def test_reshare_preserves_value(self, rng):
        from repro.sharing import share_value

        shares = share_value(0xABC, 12, 4, rng)
        fresh = reshare_word(shares, 12, 5, rng)
        assert len(fresh) == 5
        assert xor_all(fresh) == 0xABC

    def test_reshare_empty_rejected(self, rng):
        with pytest.raises(ProtocolError):
            reshare_word([], 8, 3, rng)

    def test_plan_groups_single_level(self):
        assert plan_groups(list(range(10)), fanout=100) == [list(range(10))]

    def test_plan_groups_hierarchical(self):
        groups = plan_groups(list(range(250)), fanout=100)
        assert len(groups) == 3
        assert [len(g) for g in groups] == [100, 100, 50]
        assert sum(groups, []) == list(range(250))

    def test_partial_sum_width(self):
        assert partial_sum_width(16, 100) == 16 + 7
        assert partial_sum_width(16, 1) == 17

    def test_plan_properties(self):
        plan = AggregationPlan(groups=plan_groups(list(range(250)), 100), value_bits=16)
        assert plan.is_hierarchical
        assert plan.root_inputs == 3
        assert plan.root_input_bits == plan.group_sum_bits
        single = AggregationPlan(groups=plan_groups(list(range(50)), 100), value_bits=16)
        assert not single.is_hierarchical
        assert single.root_input_bits == 16
