"""Tests for the distributed graph model."""

import pytest

from repro.core.graph import DistributedGraph
from repro.exceptions import ConfigurationError


def diamond():
    graph = DistributedGraph(degree_bound=2)
    for v in range(4):
        graph.add_vertex(v, weight=float(v))
    graph.add_edge(0, 1, debt=5.0)
    graph.add_edge(0, 2, debt=3.0)
    graph.add_edge(1, 3, debt=2.0)
    graph.add_edge(2, 3, debt=1.0)
    return graph


class TestConstruction:
    def test_vertices_and_edges(self):
        graph = diamond()
        assert graph.num_vertices == 4
        assert graph.num_edges == 4
        assert sorted(graph.edges()) == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_duplicate_vertex_rejected(self):
        graph = DistributedGraph(2)
        graph.add_vertex(0)
        with pytest.raises(ConfigurationError):
            graph.add_vertex(0)

    def test_self_loop_rejected(self):
        graph = DistributedGraph(2)
        graph.add_vertex(0)
        with pytest.raises(ConfigurationError):
            graph.add_edge(0, 0)

    def test_duplicate_edge_rejected(self):
        graph = DistributedGraph(2)
        graph.add_vertex(0)
        graph.add_vertex(1)
        graph.add_edge(0, 1)
        with pytest.raises(ConfigurationError):
            graph.add_edge(0, 1)

    def test_degree_bound_enforced(self):
        graph = DistributedGraph(1)
        for v in range(3):
            graph.add_vertex(v)
        graph.add_edge(0, 1)
        with pytest.raises(ConfigurationError):
            graph.add_edge(0, 2)  # out-degree of 0 would hit 2 > D=1

    def test_in_degree_bound_enforced(self):
        graph = DistributedGraph(1)
        for v in range(3):
            graph.add_vertex(v)
        graph.add_edge(0, 2)
        with pytest.raises(ConfigurationError):
            graph.add_edge(1, 2)

    def test_bad_degree_bound(self):
        with pytest.raises(ConfigurationError):
            DistributedGraph(0)


class TestSlots:
    def test_slot_order_matches_insertion(self):
        graph = diamond()
        assert graph.vertex(0).out_slot(1) == 0
        assert graph.vertex(0).out_slot(2) == 1
        assert graph.vertex(3).in_slot(1) == 0
        assert graph.vertex(3).in_slot(2) == 1

    def test_edge_data_on_both_endpoints(self):
        graph = diamond()
        assert graph.vertex(0).data["out_debt_0"] == 5.0
        assert graph.vertex(1).data["in_debt_0"] == 5.0
        assert graph.vertex(3).data["in_debt_1"] == 1.0

    def test_vertex_data_preserved(self):
        graph = diamond()
        assert graph.vertex(2).data["weight"] == 2.0

    def test_max_degree(self):
        assert diamond().max_degree() == 2
        empty = DistributedGraph(3)
        assert empty.max_degree() == 0
