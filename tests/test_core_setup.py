"""Tests for the trusted-party setup step (§3.4)."""

import pytest

from repro.core.setup import AGGREGATION_BLOCK_ID, TrustedParty
from repro.crypto.keys import SchnorrSigner
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, CryptoError
from repro.transfer.certificates import generate_member_keys, verify_certificate


@pytest.fixture
def tp(toy_elgamal, rng):
    return TrustedParty(toy_elgamal, rng)


class TestBlockAssignment:
    def test_blocks_have_k_plus_one_members(self, tp):
        assignment = tp.assign_blocks(list(range(10)), collusion_bound=3)
        for node in range(10):
            members = assignment.members_of(node)
            assert len(members) == 4
            assert len(set(members)) == 4

    def test_own_node_in_own_block(self, tp):
        assignment = tp.assign_blocks(list(range(10)), collusion_bound=2)
        for node in range(10):
            assert node in assignment.members_of(node)

    def test_aggregation_block_present(self, tp):
        assignment = tp.assign_blocks(list(range(10)), collusion_bound=2)
        agg = assignment.members_of(AGGREGATION_BLOCK_ID)
        assert len(agg) == 3
        assert all(m in range(10) for m in agg)

    def test_too_few_nodes_rejected(self, tp):
        with pytest.raises(ConfigurationError):
            tp.assign_blocks([0, 1], collusion_bound=2)

    def test_assignment_signed(self, tp):
        assignment = tp.assign_blocks(list(range(6)), collusion_bound=2)
        tp.verify_assignment(assignment)

    def test_tampered_assignment_rejected(self, tp):
        assignment = tp.assign_blocks(list(range(6)), collusion_bound=2)
        assignment.blocks[0][1] = assignment.blocks[0][0]
        with pytest.raises(CryptoError):
            tp.verify_assignment(assignment)

    def test_blocks_vary_across_nodes(self, tp):
        """Random assignment: not everyone gets the same co-members."""
        assignment = tp.assign_blocks(list(range(20)), collusion_bound=3)
        signatures = {tuple(sorted(assignment.members_of(n))) for n in range(20)}
        assert len(signatures) > 10


class TestCertificates:
    def test_certificates_verify(self, tp, toy_elgamal, rng):
        members = [generate_member_keys(toy_elgamal, 8, rng) for _ in range(3)]
        neighbor_keys = [toy_elgamal.group.random_scalar(rng) for _ in range(4)]
        certs = tp.build_block_certificates(7, members, neighbor_keys)
        assert len(certs) == 4
        signer = SchnorrSigner(toy_elgamal.group)
        for slot, cert in enumerate(certs):
            assert cert.owner == 7
            assert cert.edge_slot == slot
            verify_certificate(toy_elgamal, signer, tp.public_key, cert)

    def test_each_slot_differently_randomized(self, tp, toy_elgamal, rng):
        members = [generate_member_keys(toy_elgamal, 4, rng) for _ in range(2)]
        neighbor_keys = [toy_elgamal.group.random_scalar(rng) for _ in range(3)]
        certs = tp.build_block_certificates(0, members, neighbor_keys)
        first_keys = {
            toy_elgamal.group.element_to_bytes(certs[0].keys[y][t])
            for y in range(2)
            for t in range(4)
        }
        second_keys = {
            toy_elgamal.group.element_to_bytes(certs[1].keys[y][t])
            for y in range(2)
            for t in range(4)
        }
        assert not (first_keys & second_keys)


class TestTopologyIndependence:
    """The TP must never learn edges; its API cannot even express them."""

    def test_tp_api_has_no_edge_parameters(self):
        import inspect

        for method_name in ("assign_blocks", "build_block_certificates"):
            signature = inspect.signature(getattr(TrustedParty, method_name))
            for parameter in signature.parameters:
                assert "edge" not in parameter.lower() or parameter == "self"
                assert "graph" not in parameter.lower()
                assert "neighbor_certificates" not in parameter.lower()

    def test_assignment_independent_of_any_graph(self, toy_elgamal):
        """Two TPs with the same seed produce identical assignments no
        matter what graph the deployment will run — the transcript depends
        only on node ids."""
        a = TrustedParty(toy_elgamal, DeterministicRNG(1)).assign_blocks(
            list(range(8)), 2
        )
        b = TrustedParty(toy_elgamal, DeterministicRNG(1)).assign_blocks(
            list(range(8)), 2
        )
        assert a.blocks == b.blocks
