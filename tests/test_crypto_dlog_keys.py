"""Tests for dlog recovery tables and Schnorr signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.dlog import BabyStepGiantStep, DlogTable
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.keys import SchnorrSigner
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError, DecryptionError


class TestDlogTable:
    def test_full_window_recoverable(self):
        table = DlogTable(TOY_GROUP_64, half_width=50)
        for value in range(-50, 51):
            assert table.recover(TOY_GROUP_64.power_of_g(value)) == value

    def test_outside_window_raises(self):
        table = DlogTable(TOY_GROUP_64, half_width=5)
        with pytest.raises(DecryptionError):
            table.recover(TOY_GROUP_64.power_of_g(6))
        with pytest.raises(DecryptionError):
            table.recover(TOY_GROUP_64.power_of_g(-6))

    def test_entry_count_matches_appendix_b(self):
        # N_l entries spanning [-N_l/2, N_l/2] (Appendix B).
        table = DlogTable(TOY_GROUP_64, half_width=100)
        assert table.num_entries == 201

    def test_zero_width_table(self):
        table = DlogTable(TOY_GROUP_64, half_width=0)
        assert table.recover(TOY_GROUP_64.identity) == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            DlogTable(TOY_GROUP_64, half_width=-1)

    @given(st.integers(min_value=-200, max_value=200))
    @settings(max_examples=scale(30))
    def test_agrees_with_bsgs(self, value):
        table = DlogTable(TOY_GROUP_64, half_width=200)
        bsgs = BabyStepGiantStep(TOY_GROUP_64, half_width=200)
        element = TOY_GROUP_64.power_of_g(value)
        assert table.recover(element) == bsgs.recover(element) == value


class TestSchnorrSigner:
    def test_sign_verify(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        sig = signer.sign(key, b"block list", rng)
        assert signer.verify(key.public, b"block list", sig)

    def test_tampered_message_rejected(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        sig = signer.sign(key, b"payload", rng)
        assert not signer.verify(key.public, b"payloae", sig)

    def test_wrong_key_rejected(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key1 = signer.keygen(rng)
        key2 = signer.keygen(rng)
        sig = signer.sign(key1, b"data", rng)
        assert not signer.verify(key2.public, b"data", sig)

    def test_signatures_randomized(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        assert signer.sign(key, b"m", rng) != signer.sign(key, b"m", rng)

    def test_seal_open_roundtrip(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        sealed = signer.seal(key, b"certified bytes", rng)
        assert signer.open(key.public, sealed) == b"certified bytes"

    def test_open_rejects_forgery(self, rng):
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        sealed = signer.seal(key, b"original", rng)
        forged = type(sealed)(payload=b"forged!!", signature=sealed.signature)
        with pytest.raises(CryptoError):
            signer.open(key.public, forged)

    @given(st.binary(max_size=256))
    @settings(max_examples=scale(20))
    def test_arbitrary_payloads(self, payload):
        rng = DeterministicRNG(payload)
        signer = SchnorrSigner(TOY_GROUP_64)
        key = signer.keygen(rng)
        sig = signer.sign(key, payload, rng)
        assert signer.verify(key.public, payload, sig)
