"""Tests for the NIST elliptic curves (the paper's deployment group)."""

import pytest

from repro.crypto.ec import P256, P384, EllipticCurveGroup
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError

CURVES = [P256, P384]


class TestCurveConstants:
    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_generator_on_curve(self, curve):
        assert curve.is_element(curve.generator)

    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_order_annihilates_generator(self, curve):
        assert curve.exp(curve.generator, curve.order) is None

    def test_paper_curve_is_384_bit(self):
        # §5.1: "NIST/SECG curve over a 384-bit prime field (secp384r1)"
        assert P384.p.bit_length() == 384
        assert P384.order.bit_length() == 384


class TestGroupLaws:
    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_add_commutes(self, curve):
        rng = DeterministicRNG(curve.name)
        a = curve.power_of_g(curve.random_scalar(rng))
        b = curve.power_of_g(curve.random_scalar(rng))
        assert curve.mul(a, b) == curve.mul(b, a)

    def test_scalar_mult_matches_repeated_add(self):
        curve = P256
        acc = None
        for k in range(1, 8):
            acc = curve.mul(acc, curve.generator)
            assert acc == curve.exp(curve.generator, k)

    def test_inverse(self):
        curve = P256
        rng = DeterministicRNG("ec-inv")
        a = curve.power_of_g(curve.random_scalar(rng))
        assert curve.mul(a, curve.inv(a)) is None

    def test_identity_handling(self):
        curve = P256
        g = curve.generator
        assert curve.mul(None, g) == g
        assert curve.mul(g, None) == g
        assert curve.inv(None) is None
        assert curve.exp(g, 0) is None

    def test_exponent_homomorphism(self):
        curve = P256
        rng = DeterministicRNG("ec-hom")
        x = curve.random_scalar(rng)
        y = curve.random_scalar(rng)
        lhs = curve.mul(curve.power_of_g(x), curve.power_of_g(y))
        assert lhs == curve.power_of_g((x + y) % curve.order)


class TestSerialization:
    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_compressed_roundtrip(self, curve):
        rng = DeterministicRNG(curve.name + "ser")
        for _ in range(3):
            point = curve.power_of_g(curve.random_scalar(rng))
            data = curve.element_to_bytes(point)
            assert len(data) == curve.element_size_bytes
            assert curve.element_from_bytes(data) == point

    def test_infinity_roundtrip(self):
        data = P256.element_to_bytes(None)
        assert P256.element_from_bytes(data) is None

    def test_bad_prefix(self):
        data = b"\x05" + b"\x00" * (P256.element_size_bytes - 1)
        with pytest.raises(CryptoError):
            P256.element_from_bytes(data)

    def test_off_curve_x_rejected(self):
        # Find an x with no curve point: x=0 on P-256 has rhs=b which is
        # not a QR... construct by trial.
        for x in range(2, 50):
            rhs = (pow(x, 3, P256.p) + P256.a * x + P256.b) % P256.p
            y = pow(rhs, (P256.p + 1) // 4, P256.p)
            if y * y % P256.p != rhs:
                data = b"\x02" + x.to_bytes(P256._field_bytes, "big")
                with pytest.raises(CryptoError):
                    P256.element_from_bytes(data)
                return
        pytest.skip("no off-curve x found in range")

    def test_bad_constants_detected(self):
        with pytest.raises(CryptoError):
            EllipticCurveGroup(
                name="broken",
                p=P256.p,
                a=P256.a,
                b=P256.b,
                gx=P256.generator[0],
                gy=P256.generator[1] + 1,
                n=P256.order,
            )
