"""Tests for ElGamal: homomorphism, re-randomization, Kurosawa packing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.dlog import BabyStepGiantStep
from repro.crypto.ec import P256
from repro.crypto.elgamal import CountingGroup, ElGamal, ExponentialElGamal
from repro.crypto.group import GROUP_256, TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError, DecryptionError


@pytest.fixture
def eg(toy_elgamal):
    return toy_elgamal


class TestBasicElGamal:
    def test_encrypt_decrypt_group_element(self, rng):
        scheme = ElGamal(TOY_GROUP_64)
        kp = scheme.keygen(rng)
        message = TOY_GROUP_64.power_of_g(12345)
        ct = scheme.encrypt(kp.public, message, rng)
        assert scheme.decrypt(kp.secret, ct) == message

    def test_multiplicative_homomorphism(self, rng):
        scheme = ElGamal(TOY_GROUP_64)
        kp = scheme.keygen(rng)
        m1 = TOY_GROUP_64.power_of_g(3)
        m2 = TOY_GROUP_64.power_of_g(5)
        product = scheme.multiply(
            scheme.encrypt(kp.public, m1, rng), scheme.encrypt(kp.public, m2, rng)
        )
        assert scheme.decrypt(kp.secret, product) == TOY_GROUP_64.power_of_g(8)

    def test_ciphertexts_randomized(self, rng):
        scheme = ElGamal(TOY_GROUP_64)
        kp = scheme.keygen(rng)
        m = TOY_GROUP_64.power_of_g(7)
        assert scheme.encrypt(kp.public, m, rng) != scheme.encrypt(kp.public, m, rng)

    def test_wrong_key_garbles(self, rng):
        scheme = ElGamal(TOY_GROUP_64)
        kp1 = scheme.keygen(rng)
        kp2 = scheme.keygen(rng)
        m = TOY_GROUP_64.power_of_g(9)
        ct = scheme.encrypt(kp1.public, m, rng)
        assert scheme.decrypt(kp2.secret, ct) != m


class TestExponentialElGamal:
    @given(st.integers(min_value=-500, max_value=500))
    @settings(max_examples=scale(25))
    def test_int_roundtrip(self, value):
        rng = DeterministicRNG(value)
        eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=512)
        kp = eg.keygen(rng)
        assert eg.decrypt_int(kp.secret, eg.encrypt_int(kp.public, value, rng)) == value

    def test_additive_homomorphism(self, eg, rng):
        kp = eg.keygen(rng)
        total = eg.add(
            eg.encrypt_int(kp.public, 100, rng), eg.encrypt_int(kp.public, -40, rng)
        )
        assert eg.decrypt_int(kp.secret, total) == 60

    def test_add_plain(self, eg, rng):
        kp = eg.keygen(rng)
        ct = eg.encrypt_int(kp.public, 10, rng)
        assert eg.decrypt_int(kp.secret, eg.add_plain(ct, 17)) == 27

    def test_sum_many(self, eg, rng):
        kp = eg.keygen(rng)
        values = [1, -2, 3, -4, 5, 100]
        cts = [eg.encrypt_int(kp.public, v, rng) for v in values]
        assert eg.decrypt_int(kp.secret, eg.sum_ciphertexts(cts)) == sum(values)

    def test_sum_empty_rejected(self, eg):
        with pytest.raises(CryptoError):
            eg.sum_ciphertexts([])

    def test_out_of_window_fails(self, eg, rng):
        # Appendix B: sums outside the dlog table are the failure event.
        kp = eg.keygen(rng)
        ct = eg.encrypt_int(kp.public, 513, rng)  # window is +-512
        with pytest.raises(DecryptionError):
            eg.decrypt_int(kp.secret, ct)


class TestReRandomization:
    """The §3 requirement: re-randomized keys decrypt after Adjust."""

    def test_rerandomized_key_roundtrip(self, eg, rng):
        kp = eg.keygen(rng)
        r = eg.group.random_scalar(rng)
        pk_r = eg.rerandomize_key(kp.public, r)
        ct = eg.encrypt_int(pk_r, 42, rng)
        assert eg.decrypt_int(kp.secret, eg.adjust(ct, r)) == 42

    def test_without_adjust_fails(self, eg, rng):
        kp = eg.keygen(rng)
        r = eg.group.random_scalar(rng)
        ct = eg.encrypt_int(eg.rerandomize_key(kp.public, r), 42, rng)
        with pytest.raises(DecryptionError):
            eg.decrypt_int(kp.secret, ct)

    def test_rerandomized_key_unlinkable_value(self, eg, rng):
        # g^(xr) is just another random-looking element; at minimum it
        # must differ from g^x for r != 1.
        kp = eg.keygen(rng)
        r = 2 + rng.randbelow(eg.group.order - 2)
        assert eg.rerandomize_key(kp.public, r) != kp.public

    def test_zero_neighbor_key_rejected(self, eg, rng):
        kp = eg.keygen(rng)
        with pytest.raises(CryptoError):
            eg.rerandomize_key(kp.public, 0)

    def test_homomorphism_survives_adjust(self, eg, rng):
        # The final protocol sums ciphertexts under a re-randomized key and
        # adjusts the aggregate — the whole §3.5 pipeline in miniature.
        kp = eg.keygen(rng)
        r = eg.group.random_scalar(rng)
        pk_r = eg.rerandomize_key(kp.public, r)
        cts = [eg.encrypt_int(pk_r, v, rng) for v in (5, 6, 7)]
        total = eg.sum_ciphertexts(cts)
        assert eg.decrypt_int(kp.secret, eg.adjust(total, r)) == 18


class TestKurosawa:
    """The §5.1 multi-recipient optimization [44]."""

    def test_bits_roundtrip(self, eg, rng):
        kps = [eg.keygen(rng) for _ in range(8)]
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        cts = eg.encrypt_bits_kurosawa([kp.public for kp in kps], bits, rng)
        assert [eg.decrypt_int(kp.secret, ct) for kp, ct in zip(kps, cts)] == bits

    def test_shared_ephemeral(self, eg, rng):
        kps = [eg.keygen(rng) for _ in range(4)]
        cts = eg.encrypt_bits_kurosawa([kp.public for kp in kps], [1, 0, 1, 0], rng)
        assert len({eg.group.element_to_bytes(ct.c1) for ct in cts}) == 1

    def test_saves_exponentiations(self, rng):
        counting = CountingGroup(TOY_GROUP_64)
        eg = ExponentialElGamal(counting, dlog_half_width=4)
        kps = [eg.keygen(rng) for _ in range(8)]
        counting.reset()
        eg.encrypt_bits_kurosawa([kp.public for kp in kps], [1] * 8, rng)
        kurosawa_exps = counting.exp_count
        counting.reset()
        for kp in kps:
            eg.encrypt_int(kp.public, 1, rng)
        naive_exps = counting.exp_count
        assert kurosawa_exps < naive_exps

    def test_key_count_mismatch(self, eg, rng):
        kps = [eg.keygen(rng) for _ in range(3)]
        with pytest.raises(CryptoError):
            eg.encrypt_bits_kurosawa([kp.public for kp in kps], [1, 0], rng)

    def test_non_bit_rejected(self, eg, rng):
        kps = [eg.keygen(rng) for _ in range(2)]
        with pytest.raises(CryptoError):
            eg.encrypt_bits_kurosawa([kp.public for kp in kps], [1, 2], rng)


class TestOverOtherGroups:
    def test_over_256_bit_group(self, rng):
        eg = ExponentialElGamal(GROUP_256, dlog_half_width=64)
        kp = eg.keygen(rng)
        assert eg.decrypt_int(kp.secret, eg.encrypt_int(kp.public, -33, rng)) == -33

    def test_over_nist_curve(self, rng):
        # The paper's actual deployment group.
        eg = ExponentialElGamal(P256, dlog_half_width=16)
        kp = eg.keygen(rng)
        ct = eg.add(
            eg.encrypt_int(kp.public, 7, rng), eg.encrypt_int(kp.public, 8, rng)
        )
        assert eg.decrypt_int(kp.secret, ct) == 15


class TestBabyStepGiantStep:
    @given(st.integers(min_value=-300, max_value=300))
    @settings(max_examples=scale(25))
    def test_recovers_in_window(self, value):
        bsgs = BabyStepGiantStep(TOY_GROUP_64, half_width=300)
        assert bsgs.recover(TOY_GROUP_64.power_of_g(value)) == value

    def test_outside_window_fails(self):
        bsgs = BabyStepGiantStep(TOY_GROUP_64, half_width=10)
        with pytest.raises(DecryptionError):
            bsgs.recover(TOY_GROUP_64.power_of_g(5000))
