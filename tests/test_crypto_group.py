"""Tests for Schnorr groups and the group interface."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.group import (
    GROUP_160,
    GROUP_256,
    GROUP_512,
    TOY_GROUP_64,
    SchnorrGroup,
    default_group,
)
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError

ALL_GROUPS = [TOY_GROUP_64, GROUP_160, GROUP_256, GROUP_512]


class TestGroupLaws:
    @pytest.mark.parametrize("group", ALL_GROUPS, ids=lambda g: g.name)
    def test_generator_has_order_q(self, group):
        assert group.exp(group.generator, group.order) == group.identity

    @pytest.mark.parametrize("group", ALL_GROUPS, ids=lambda g: g.name)
    def test_associativity_and_identity(self, group):
        rng = DeterministicRNG(group.name)
        a = group.power_of_g(group.random_scalar(rng))
        b = group.power_of_g(group.random_scalar(rng))
        c = group.power_of_g(group.random_scalar(rng))
        assert group.mul(group.mul(a, b), c) == group.mul(a, group.mul(b, c))
        assert group.mul(a, group.identity) == a

    @pytest.mark.parametrize("group", ALL_GROUPS, ids=lambda g: g.name)
    def test_inverse(self, group):
        rng = DeterministicRNG(group.name)
        a = group.power_of_g(group.random_scalar(rng))
        assert group.mul(a, group.inv(a)) == group.identity

    def test_exponent_addition_homomorphism(self):
        group = TOY_GROUP_64
        rng = DeterministicRNG(0)
        x = group.random_scalar(rng)
        y = group.random_scalar(rng)
        assert group.mul(group.power_of_g(x), group.power_of_g(y)) == group.power_of_g(
            (x + y) % group.order
        )

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=scale(40))
    def test_exp_reduces_mod_order(self, e):
        group = TOY_GROUP_64
        assert group.power_of_g(e) == group.power_of_g(e + group.order)


class TestSerialization:
    @pytest.mark.parametrize("group", ALL_GROUPS, ids=lambda g: g.name)
    def test_roundtrip(self, group):
        rng = DeterministicRNG(group.name + "ser")
        element = group.power_of_g(group.random_scalar(rng))
        data = group.element_to_bytes(element)
        assert len(data) == group.element_size_bytes
        assert group.element_from_bytes(data) == element

    def test_bad_length_rejected(self):
        with pytest.raises(CryptoError):
            TOY_GROUP_64.element_from_bytes(b"\x01")

    def test_non_element_rejected(self):
        # p-1 is not a quadratic residue for a safe prime group
        bad = (TOY_GROUP_64.p - 1).to_bytes(TOY_GROUP_64.element_size_bytes, "big")
        with pytest.raises(CryptoError):
            TOY_GROUP_64.element_from_bytes(bad)


class TestValidation:
    def test_is_element_accepts_generator_powers(self):
        rng = DeterministicRNG("val")
        for _ in range(10):
            e = TOY_GROUP_64.power_of_g(TOY_GROUP_64.random_scalar(rng))
            assert TOY_GROUP_64.is_element(e)

    def test_is_element_rejects_non_residue(self):
        assert not TOY_GROUP_64.is_element(TOY_GROUP_64.p - 1)

    def test_bad_safe_prime_rejected(self):
        with pytest.raises(CryptoError):
            SchnorrGroup(p=23, q=7, g=2)  # 23 != 2*7+1

    def test_bad_generator_rejected(self):
        # p=23, q=11 is a safe-prime pair; 5 is not a QR mod 23
        with pytest.raises(CryptoError):
            SchnorrGroup(p=23, q=11, g=5)

    def test_random_scalar_nonzero(self):
        rng = DeterministicRNG("scalar")
        for _ in range(50):
            s = TOY_GROUP_64.random_scalar(rng)
            assert 1 <= s < TOY_GROUP_64.order


class TestDefaults:
    def test_default_group_is_ddh_sized(self):
        group = default_group()
        assert group.order.bit_length() >= 250

    def test_hash_to_scalar_in_range(self):
        for data in (b"", b"a", b"x" * 1000):
            s = TOY_GROUP_64.hash_to_scalar(data)
            assert 0 <= s < TOY_GROUP_64.order

    def test_div(self):
        rng = DeterministicRNG("div")
        g = TOY_GROUP_64
        a = g.power_of_g(g.random_scalar(rng))
        b = g.power_of_g(g.random_scalar(rng))
        assert g.mul(g.div(a, b), b) == a
