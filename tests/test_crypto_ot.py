"""Tests for oblivious transfer: base OT, simulated OT, IKNP extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.group import TOY_GROUP_64
from repro.crypto.ot import DDHObliviousTransfer, SimulatedObliviousTransfer
from repro.crypto.ot_extension import IKNPOTExtension
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError


def backends():
    return [
        DDHObliviousTransfer(TOY_GROUP_64),
        SimulatedObliviousTransfer(TOY_GROUP_64),
        IKNPOTExtension(DDHObliviousTransfer(TOY_GROUP_64), kappa=32, batch_size=64),
    ]


class TestCorrectness:
    @pytest.mark.parametrize("ot", backends(), ids=lambda o: type(o).__name__)
    def test_byte_messages(self, ot, rng):
        for choice in (0, 1):
            m0, m1 = b"message-zero!", b"message-one!!"
            assert ot.transfer(m0, m1, choice, rng) == (m1 if choice else m0)

    @pytest.mark.parametrize("ot", backends(), ids=lambda o: type(o).__name__)
    def test_bit_transfers_exhaustive(self, ot, rng):
        for b0 in (0, 1):
            for b1 in (0, 1):
                for c in (0, 1):
                    assert ot.transfer_bit(b0, b1, c, rng) == (b1 if c else b0)

    @pytest.mark.parametrize("ot", backends(), ids=lambda o: type(o).__name__)
    def test_length_mismatch_rejected(self, ot, rng):
        with pytest.raises(ProtocolError):
            ot.transfer(b"ab", b"abc", 0, rng)

    @pytest.mark.parametrize("ot", backends(), ids=lambda o: type(o).__name__)
    def test_bad_choice_rejected(self, ot, rng):
        with pytest.raises(ProtocolError):
            ot.transfer(b"a", b"b", 2, rng)

    @given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
    @settings(max_examples=scale(20))
    def test_ddh_ot_arbitrary_messages(self, m0, m1):
        if len(m0) != len(m1):
            m = min(len(m0), len(m1))
            m0, m1 = m0[:m], m1[:m]
        ot = DDHObliviousTransfer(TOY_GROUP_64)
        rng = DeterministicRNG(m0 + m1)
        assert ot.transfer(m0, m1, 0, rng) == m0
        assert ot.transfer(m0, m1, 1, rng) == m1


class TestAccounting:
    def test_stats_accumulate(self, rng):
        ot = DDHObliviousTransfer(TOY_GROUP_64)
        for _ in range(5):
            ot.transfer(b"x", b"y", 1, rng)
        assert ot.stats.transfers == 5
        assert ot.stats.sender_bytes == 5 * ot.sender_bytes_per_transfer(1)
        assert ot.stats.receiver_bytes == 5 * ot.receiver_bytes_per_transfer(1)

    def test_simulated_reports_real_protocol_bytes(self):
        real = DDHObliviousTransfer(TOY_GROUP_64)
        fake = SimulatedObliviousTransfer(TOY_GROUP_64)
        for n in (1, 13, 100):
            assert fake.sender_bytes_per_transfer(n) == real.sender_bytes_per_transfer(n)
            assert fake.receiver_bytes_per_transfer(n) == real.receiver_bytes_per_transfer(n)

    def test_sender_cost_grows_with_message(self):
        ot = DDHObliviousTransfer(TOY_GROUP_64)
        assert ot.sender_bytes_per_transfer(100) > ot.sender_bytes_per_transfer(1)

    def test_receiver_cost_message_independent(self):
        ot = DDHObliviousTransfer(TOY_GROUP_64)
        assert ot.receiver_bytes_per_transfer(1) == ot.receiver_bytes_per_transfer(1000)


class TestIKNPExtension:
    def test_base_ots_amortized(self, rng):
        base = DDHObliviousTransfer(TOY_GROUP_64)
        ext = IKNPOTExtension(base, kappa=16, batch_size=128)
        for i in range(200):
            ext.transfer_bit(i & 1, (i >> 1) & 1, i % 2, rng)
        # 200 transfers crossed one batch boundary: 2 extension phases,
        # each costing kappa base OTs.
        assert ext.extension_phases == 2
        assert ext.base_ot_count == 32
        assert base.stats.transfers == 32

    def test_extension_bytes_cheaper_than_base(self):
        base = DDHObliviousTransfer(TOY_GROUP_64)
        ext = IKNPOTExtension(base, kappa=16, batch_size=64)
        assert ext.sender_bytes_per_transfer(1) < base.sender_bytes_per_transfer(1)

    def test_small_kappa_rejected(self):
        with pytest.raises(ProtocolError):
            IKNPOTExtension(DDHObliviousTransfer(TOY_GROUP_64), kappa=4)

    def test_long_messages(self, rng):
        ext = IKNPOTExtension(DDHObliviousTransfer(TOY_GROUP_64), kappa=16, batch_size=8)
        m0, m1 = b"A" * 100, b"B" * 100
        assert ext.transfer(m0, m1, 0, rng) == m0
        assert ext.transfer(m0, m1, 1, rng) == m1
