"""Tests for the deterministic RNG."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(1234)
        b = DeterministicRNG(1234)
        assert [a.randbits(16) for _ in range(50)] == [b.randbits(16) for _ in range(50)]

    def test_different_seeds_diverge(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.randbits(32) for _ in range(8)] != [b.randbits(32) for _ in range(8)]

    def test_seed_types_accepted(self):
        for seed in (0, b"bytes", "string", 2**128):
            assert isinstance(DeterministicRNG(seed).randbits(8), int)

    def test_fork_streams_differ_from_parent(self):
        parent = DeterministicRNG(7)
        child = parent.fork("child")
        assert [parent.randbits(32) for _ in range(8)] != [
            child.randbits(32) for _ in range(8)
        ]

    def test_repeated_forks_differ(self):
        parent = DeterministicRNG(7)
        first = parent.fork("gmw")
        second = parent.fork("gmw")
        assert [first.randbits(32) for _ in range(4)] != [
            second.randbits(32) for _ in range(4)
        ]

    def test_fork_reproducible_across_runs(self):
        def sequence():
            parent = DeterministicRNG(7)
            return [parent.fork("x").randbits(32) for _ in range(4)]

        assert sequence() == sequence()


class TestRanges:
    def test_randbits_in_range(self):
        rng = DeterministicRNG(0)
        for k in (1, 7, 8, 9, 63, 64, 65):
            for _ in range(20):
                assert 0 <= rng.randbits(k) < (1 << k)

    def test_randbits_zero(self):
        assert DeterministicRNG(0).randbits(0) == 0

    def test_randbits_negative_raises(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randbits(-1)

    def test_randbelow_covers_support(self):
        rng = DeterministicRNG(3)
        seen = {rng.randbelow(5) for _ in range(200)}
        assert seen == {0, 1, 2, 3, 4}

    def test_randbelow_invalid(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randbelow(0)

    def test_randrange_two_arg(self):
        rng = DeterministicRNG(4)
        for _ in range(50):
            assert 10 <= rng.randrange(10, 20) < 20

    def test_randrange_empty(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randrange(5, 5)

    def test_random_unit_interval(self):
        rng = DeterministicRNG(5)
        values = [rng.random() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7

    def test_randbytes_length(self):
        rng = DeterministicRNG(6)
        for n in (0, 1, 31, 32, 33, 100):
            assert len(rng.randbytes(n)) == n

    def test_randbytes_negative(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).randbytes(-1)


class TestCollections:
    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(8)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_distinct(self):
        rng = DeterministicRNG(9)
        sample = rng.sample(list(range(20)), 10)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_too_large(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).sample([1, 2], 3)

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            DeterministicRNG(0).choice([])

    def test_choice_member(self):
        rng = DeterministicRNG(10)
        population = ["a", "b", "c"]
        assert rng.choice(population) in population


class TestStatistics:
    def test_bit_balance(self):
        rng = DeterministicRNG(11)
        ones = sum(rng.randbit() for _ in range(4000))
        assert 1800 < ones < 2200

    @given(st.integers(min_value=2, max_value=1000))
    @settings(max_examples=scale(30))
    def test_randbelow_bound_property(self, bound):
        rng = DeterministicRNG(bound)
        for _ in range(10):
            assert 0 <= rng.randbelow(bound) < bound
