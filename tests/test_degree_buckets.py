"""Tests for the §3.7 degree-bucket optimization in the secure engine."""

import pytest

from repro.core.config import DStressConfig
from repro.core.engine import PlaintextEngine
from repro.core.secure_engine import SecureEngine
from repro.crypto.group import TOY_GROUP_64
from repro.exceptions import ConfigurationError
from repro.finance import Bank, EisenbergNoeProgram, FinancialNetwork
from repro.mpc.fixedpoint import FixedPointFormat

FMT = FixedPointFormat(16, 8)


def hub_network() -> FinancialNetwork:
    """One hub bank owing three others, which owe nothing: degrees 3/1."""
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=1.0))  # hub, under-reserved
    for i in (1, 2, 3):
        net.add_bank(Bank(i, cash=1.0))
        net.add_debt(0, i, 2.0)
    net.add_bank(Bank(4, cash=0.2))
    net.add_debt(4, 0, 1.0)
    return net


def config(**overrides):
    defaults = dict(
        collusion_bound=2,
        fmt=FMT,
        group=TOY_GROUP_64,
        dlog_half_width=300,
        edge_noise_alpha=0.4,
        output_epsilon=0.5,
        seed=13,
    )
    defaults.update(overrides)
    return DStressConfig(**defaults)


class TestBuckets:
    def test_bucketed_output_matches_uniform(self):
        """Buckets change cost, never the computed value."""
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        program = EisenbergNoeProgram(FMT)
        uniform = SecureEngine(program, config()).run(graph, iterations=3)
        bucketed = SecureEngine(program, config()).run(
            graph, iterations=3, bucket_bounds=[1, 3]
        )
        assert bucketed.pre_noise_output == uniform.pre_noise_output
        oracle = PlaintextEngine(program).run_fixed(graph, iterations=3)
        assert bucketed.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)

    def test_buckets_reduce_ot_count(self):
        """Low-degree vertices run the small circuit: fewer OTs overall."""
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        program = EisenbergNoeProgram(FMT)
        uniform = SecureEngine(program, config()).run(graph, iterations=2)
        bucketed = SecureEngine(program, config()).run(
            graph, iterations=2, bucket_bounds=[1, 3]
        )
        # The EN circuit's divider is degree-independent, so per-vertex
        # savings are bounded; 4 of 5 vertices on the small circuit still
        # shaves ~30% here (and far more at the paper's D=100).
        assert bucketed.gmw_ot_count < 0.75 * uniform.gmw_ot_count

    def test_largest_bucket_must_cover_max_degree(self):
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        engine = SecureEngine(EisenbergNoeProgram(FMT), config())
        with pytest.raises(ConfigurationError):
            engine.run(graph, iterations=1, bucket_bounds=[1, 2])

    def test_invalid_bucket_values(self):
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        engine = SecureEngine(EisenbergNoeProgram(FMT), config())
        with pytest.raises(ConfigurationError):
            engine.run(graph, iterations=1, bucket_bounds=[0, 3])

    def test_single_bucket_equals_uniform(self):
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        program = EisenbergNoeProgram(FMT)
        uniform = SecureEngine(program, config()).run(graph, iterations=2)
        single = SecureEngine(program, config()).run(
            graph, iterations=2, bucket_bounds=[3]
        )
        assert single.gmw_ot_count == uniform.gmw_ot_count
        assert single.pre_noise_output == uniform.pre_noise_output

    def test_buckets_with_padded_transfers(self):
        """Padding interacts with buckets: each vertex pads to its own
        bucket bound, not the global one."""
        net = hub_network()
        graph = net.to_en_graph(degree_bound=3)
        program = EisenbergNoeProgram(FMT)
        result = SecureEngine(program, config(pad_transfers=True)).run(
            graph, iterations=1, bucket_bounds=[1, 3]
        )
        # Vertex 0: bucket 3 (in-degree 1 padded to 3? out-degree 3).
        # transfers = real edges (4) + padding up to each vertex's bound.
        assert result.transfer_count >= graph.num_edges
        oracle = PlaintextEngine(program).run_fixed(graph, iterations=1)
        assert result.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)
