"""The persistent on-disk scenario cache and fingerprint edge cases.

The disk tier's contract mirrors the memory cache's, plus survival: a
sweep re-run in a *fresh process* pointed at the same directory must
perform zero engine executions and zero epsilon charges, bit-identically.
Everything that can go wrong on disk — torn writes, corrupted entries,
format-version skew, byte-cap eviction, concurrent writers — must read
as a miss and a recompute, never as corruption or a wrong hit.
"""

import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import time
from pathlib import Path

import pytest

from repro import PrivacyAccountant, Scenario, StressTest
from repro.api import Engine, PersistentScenarioCache, RunResult, run_fingerprint
from repro.api import diskcache as diskcache_mod
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import CorePeripheryParams, core_periphery_network

SEED = 123


@pytest.fixture(scope="module")
def network():
    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    return apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))


@pytest.fixture
def template(network):
    return StressTest(network).program("eisenberg-noe").seed(SEED)


def _fp(tag) -> str:
    return hashlib.sha256(repr(tag).encode()).hexdigest()


def _result(value: float, padding: int = 0) -> RunResult:
    return RunResult(
        engine="test",
        program="test-program",
        aggregate=value,
        trajectory=[value, value],
        iterations=2,
        wall_seconds=0.0,
        extras={f"pad-{i}": float(i) for i in range(padding)},
    )


# ----------------------------------------------------- fingerprint edges --


class TokenEngine(Engine):
    """Engine whose constructor attributes become fingerprint inputs."""

    name = "token-probe"

    def __init__(self, **attrs) -> None:
        self.__dict__.update(attrs)

    def execute(self, program, graph, iterations, config, accountant=None):
        raise AssertionError("fingerprint probes never execute")


def _engine_fingerprint(template, **attrs):
    session = template.clone().engine(TokenEngine(**attrs))
    return run_fingerprint(session.resolve(2, label="probe"))


def test_fingerprint_separates_positive_and_negative_zero(template):
    # -0.0 == 0.0 in float arithmetic, but downstream code may branch on
    # the sign bit; the cache errs toward a miss and keeps them distinct
    assert _engine_fingerprint(template, x=0.0) != _engine_fingerprint(template, x=-0.0)


def test_fingerprint_separates_bool_from_int_options(template):
    # True == 1 and hash(True) == hash(1), but an engine option True and
    # an engine option 1 may configure different behaviors
    assert _engine_fingerprint(template, flag=True) != _engine_fingerprint(
        template, flag=1
    )
    assert _engine_fingerprint(template, flag=False) != _engine_fingerprint(
        template, flag=0
    )


def test_fingerprint_nan_tolerance_is_stable(template):
    # NaN != NaN, but two runs resolved with a NaN tolerance are the same
    # run: the token is repr-based, so the fingerprint must be stable
    one = run_fingerprint(
        template.clone().resolve("auto", tolerance=float("nan"), label="a")
    )
    two = run_fingerprint(
        template.clone().resolve("auto", tolerance=float("nan"), label="b")
    )
    assert one is not None and one == two
    plain = run_fingerprint(template.clone().resolve("auto", tolerance=1e-6, label="a"))
    assert one != plain


def test_fingerprint_mixed_type_sets_are_order_independent(template):
    elements = [1, "a", 2.5, (3, 4), b"bytes", None]
    forward = _engine_fingerprint(template, payload=set(elements))
    backward = _engine_fingerprint(template, payload=set(reversed(elements)))
    assert forward is not None and forward == backward


def test_fingerprint_mixed_type_dicts_are_order_independent(template):
    forward = _engine_fingerprint(
        template, payload={"b": 1, "a": (2, 3), 7: "x", (1, 2): None}
    )
    backward = _engine_fingerprint(
        template, payload={(1, 2): None, 7: "x", "a": (2, 3), "b": 1}
    )
    assert forward is not None and forward == backward
    changed = _engine_fingerprint(
        template, payload={"b": 1, "a": (2, 3), 7: "y", (1, 2): None}
    )
    assert forward != changed


# ------------------------------------------------- disk store unit tests --


def test_store_and_lookup_survive_an_instance_restart(tmp_path):
    first = PersistentScenarioCache(tmp_path)
    first.store(_fp("a"), _result(1.5))
    assert len(first) == 1
    # a brand-new instance (fresh memory tier) hits from disk
    second = PersistentScenarioCache(tmp_path)
    hit = second.lookup(_fp("a"))
    assert hit is not None and hit.aggregate == 1.5
    assert second.hits == 1 and second.disk_hits == 1 and second.memory_hits == 0
    # the same instance now serves repeats from memory
    again = second.lookup(_fp("a"))
    assert again is not None and second.memory_hits == 1
    # hits are isolated copies: vandalism must not poison the next hit
    again.trajectory.clear()
    third = second.lookup(_fp("a"))
    assert third.trajectory == [1.5, 1.5]


def test_lookup_of_unknown_fingerprint_misses(tmp_path):
    cache = PersistentScenarioCache(tmp_path)
    assert cache.lookup(_fp("nope")) is None
    assert cache.lookup(None) is None  # unfingerprintable runs always miss
    assert (cache.hits, cache.misses) == (0, 2)


def test_corrupted_payload_reads_as_miss_and_is_discarded(tmp_path):
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    cache.store(_fp("a"), _result(1.0))
    (tmp_path / (_fp("a") + ".pkl")).write_bytes(b"not a pickle at all")
    assert cache.lookup(_fp("a")) is None
    assert len(cache) == 0  # the remains were cleaned up, not retried forever


def test_corrupted_sidecar_reads_as_miss(tmp_path):
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    cache.store(_fp("a"), _result(1.0))
    (tmp_path / (_fp("a") + ".json")).write_text("{truncated")
    assert cache.lookup(_fp("a")) is None
    assert len(cache) == 0


def test_version_bump_reads_as_miss(tmp_path, monkeypatch):
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    cache.store(_fp("a"), _result(1.0))
    monkeypatch.setattr(diskcache_mod, "DISK_FORMAT_VERSION", 2)
    stale_reader = PersistentScenarioCache(tmp_path, memory_tier=False)
    assert stale_reader.lookup(_fp("a")) is None
    # and a fresh store under the new version works
    stale_reader.store(_fp("a"), _result(2.0))
    assert stale_reader.lookup(_fp("a")).aggregate == 2.0


def test_wrong_payload_type_reads_as_miss(tmp_path):
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    cache.store(_fp("a"), _result(1.0))
    # a valid pickle of the wrong type must not be handed out as a result
    (tmp_path / (_fp("a") + ".pkl")).write_bytes(pickle.dumps({"not": "a RunResult"}))
    assert cache.lookup(_fp("a")) is None


def test_memory_hits_never_write_to_disk(tmp_path):
    # the hot path's cost contract is one deep copy: a memory-tier hit
    # must not rewrite the sidecar (no fsync per hit on a hot sweep)
    cache = PersistentScenarioCache(tmp_path)
    cache.store(_fp("a"), _result(1.0))
    sidecar = tmp_path / (_fp("a") + ".json")
    before = sidecar.read_bytes()
    assert cache.lookup(_fp("a")) is not None
    assert cache.memory_hits == 1
    assert sidecar.read_bytes() == before  # used_at untouched


def test_orphan_payloads_are_swept_after_grace_period(tmp_path):
    # a writer SIGKILLed between the payload and sidecar writes leaves a
    # sidecar-less payload: invisible to lookups and the eviction walk,
    # it must be reclaimed — but only once old enough that no live
    # writer can still be mid-persist
    stale = tmp_path / (_fp("dead") + ".pkl")
    stale.write_bytes(b"payload whose sidecar never landed")
    old = time.time() - 3600
    os.utime(stale, (old, old))
    fresh = tmp_path / (_fp("live") + ".pkl")
    fresh.write_bytes(b"a writer might still be mid-persist")

    probe = PersistentScenarioCache(tmp_path / "probe")
    probe.store(_fp("size"), _result(0.0))
    entry_bytes = probe.total_bytes()

    cache = PersistentScenarioCache(tmp_path, max_bytes=max(entry_bytes + 1, 64))
    assert not stale.exists()  # swept on init
    assert fresh.exists()  # grace period protects a possibly-live writer

    # the eviction walk (triggered by crossing the cap) sweeps orphans
    # that appear after init, too
    late = tmp_path / (_fp("late") + ".pkl")
    late.write_bytes(b"crashed after init")
    os.utime(late, (old, old))
    cache.store(_fp("a"), _result(1.0))
    cache.store(_fp("b"), _result(2.0))  # crosses the cap: full walk runs
    assert not late.exists()


def test_memory_tier_serves_hits_after_disk_vanishes(tmp_path):
    cache = PersistentScenarioCache(tmp_path)
    cache.store(_fp("a"), _result(3.25))
    for path in tmp_path.iterdir():
        path.unlink()
    hit = cache.lookup(_fp("a"))
    assert hit is not None and hit.aggregate == 3.25
    assert cache.memory_hits == 1 and cache.disk_hits == 0


def test_lru_eviction_under_byte_cap(tmp_path):
    probe = PersistentScenarioCache(tmp_path / "probe")
    probe.store(_fp("size"), _result(0.0))
    entry_bytes = probe.total_bytes()
    assert entry_bytes > 0

    cache = PersistentScenarioCache(
        tmp_path / "store", max_bytes=int(entry_bytes * 2.5), memory_tier=False
    )
    cache.store(_fp("a"), _result(1.0))
    cache.store(_fp("b"), _result(2.0))
    assert cache.evictions == 0 and len(cache) == 2
    # touch 'a' so 'b' becomes the least recently used
    assert cache.lookup(_fp("a")) is not None
    cache.store(_fp("c"), _result(3.0))
    assert cache.evictions == 1 and cache.evicted_bytes > 0
    assert cache.lookup(_fp("b")) is None  # the LRU entry went
    assert cache.lookup(_fp("a")).aggregate == 1.0
    assert cache.lookup(_fp("c")).aggregate == 3.0
    assert cache.total_bytes() <= cache.max_bytes
    stats = cache.stats()
    assert stats["evictions"] == 1 and stats["entries"] == 2


def test_oversized_entry_is_rejected_without_flushing_the_store(tmp_path):
    probe = PersistentScenarioCache(tmp_path / "probe")
    probe.store(_fp("size"), _result(0.0))
    entry_bytes = probe.total_bytes()

    cache = PersistentScenarioCache(
        tmp_path / "store", max_bytes=int(entry_bytes * 2.5)
    )
    cache.store(_fp("a"), _result(1.0))
    cache.store(_fp("b"), _result(2.0))
    # an entry that can never fit must not evict the ones that do — and a
    # rejection is not an eviction: no bytes left the disk
    cache.store(_fp("huge"), _result(3.0, padding=5000))
    assert (cache.rejections, cache.evictions, cache.evicted_bytes) == (1, 0, 0)
    assert cache.lookup(_fp("huge")) is None  # memory tier skipped too
    assert cache.lookup(_fp("a")).aggregate == 1.0
    assert cache.lookup(_fp("b")).aggregate == 2.0
    assert cache.stats()["rejections"] == 1


def test_under_cap_entry_survives_its_own_eviction_walk(tmp_path):
    # an entry between the low-water mark and the cap fits, so the walk
    # its store triggers may evict everything EXCEPT it — otherwise a
    # sweep with one large result would get zero persistence and re-burn
    # epsilon on every restart
    small_probe = PersistentScenarioCache(tmp_path / "p1")
    small_probe.store(_fp("s"), _result(1.0))
    big_probe = PersistentScenarioCache(tmp_path / "p2")
    big_probe.store(_fp("b"), _result(2.0, padding=100))
    big_bytes = big_probe.total_bytes()

    cache = PersistentScenarioCache(
        tmp_path / "store", max_bytes=int(big_bytes * 1.05), memory_tier=False
    )
    cache.store(_fp("small"), _result(1.0))
    cache.store(_fp("big"), _result(2.0, padding=100))  # ~95% of the cap
    assert cache.lookup(_fp("big")) is not None  # the newcomer survived
    assert cache.lookup(_fp("small")) is None  # the LRU entry made room
    assert cache.evictions == 1
    assert cache.total_bytes() <= cache.max_bytes


def test_eviction_cap_validation(tmp_path):
    with pytest.raises(ConfigurationError, match="max_bytes"):
        PersistentScenarioCache(tmp_path, max_bytes=0)
    with pytest.raises(ConfigurationError, match="max_bytes"):
        PersistentScenarioCache(tmp_path, max_bytes=True)


def test_clear_removes_entries_and_tmp_files(tmp_path):
    cache = PersistentScenarioCache(tmp_path)
    cache.store(_fp("a"), _result(1.0))
    (tmp_path / ".tmp-999-dead").write_bytes(b"leftover")
    cache.clear()
    assert len(cache) == 0
    assert list(tmp_path.iterdir()) == []
    assert cache.lookup(_fp("a")) is None


def test_stale_tmp_files_are_swept_on_init(tmp_path):
    (tmp_path / ".tmp-999-dead").write_bytes(b"leftover from a crash")
    PersistentScenarioCache(tmp_path)
    assert not list(tmp_path.glob(".tmp-*"))


# ------------------------------------------------ crash / concurrency --


def _store_forever(directory: str) -> None:
    cache = PersistentScenarioCache(directory)
    index = 0
    while True:
        cache.store(_fp(("kill", index)), _result(float(index), padding=200))
        index += 1


def test_sigkilled_writer_never_leaves_a_torn_entry(tmp_path):
    ctx = multiprocessing.get_context("fork")
    writer = ctx.Process(target=_store_forever, args=(str(tmp_path),))
    writer.start()
    time.sleep(0.4)
    os.kill(writer.pid, signal.SIGKILL)
    writer.join()

    # restart: stale tmp files are swept, and EVERY entry with a live
    # sidecar must unpickle (the payload is written before the sidecar,
    # so a kill between the two leaves a miss, never a dangling sidecar)
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    assert not list(tmp_path.glob(".tmp-*"))
    sidecars = list(tmp_path.glob("*.json"))
    assert sidecars, "writer should have landed at least one entry"
    for sidecar in sidecars:
        fingerprint = sidecar.name[: -len(".json")]
        hit = cache.lookup(fingerprint)
        assert hit is not None, f"torn entry {fingerprint}"


def _store_range(directory: str, start: int, count: int) -> None:
    cache = PersistentScenarioCache(directory)
    for index in range(start, start + count):
        cache.store(_fp(("concurrent", index % 8)), _result(float(index % 8)))


def test_concurrent_writers_on_one_directory_stay_consistent(tmp_path):
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(target=_store_range, args=(str(tmp_path), base, 40))
        for base in (0, 4)
    ]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join()
        assert writer.exitcode == 0
    cache = PersistentScenarioCache(tmp_path, memory_tier=False)
    assert len(cache) == 8
    for index in range(8):
        hit = cache.lookup(_fp(("concurrent", index)))
        assert hit is not None and hit.aggregate == float(index)


# ------------------------------------------------- batch-layer behavior --


def _scenarios(count=3, epsilon=0.1):
    return [
        Scenario(
            f"s{i}",
            engine="naive-mpc",
            engine_options={"estimate_cost": False},
            epsilon=epsilon,
            seed=i,
            iterations=2,
        )
        for i in range(count)
    ]


def test_cache_path_argument_builds_persistent_cache(template, tmp_path):
    cache_dir = tmp_path / "cache"
    first = template.run_many(_scenarios(), cache=str(cache_dir))
    assert (first.cache_hits, first.cache_misses) == (0, 3)
    assert cache_dir.is_dir() and len(list(cache_dir.glob("*.pkl"))) == 3
    # a second batch through a NEW cache object (fresh memory tier,
    # same directory) is all hits — the in-process-restart shape
    second = template.run_many(_scenarios(), cache=cache_dir)  # PathLike works too
    assert (second.cache_hits, second.cache_misses) == (3, 0)
    for i in range(3):
        assert second.by_name(f"s{i}").cached
        assert (
            second.by_name(f"s{i}").result.aggregate
            == first.by_name(f"s{i}").result.aggregate
        )


def test_streaming_batch_accepts_cache_path(template, tmp_path):
    cache_dir = str(tmp_path / "cache")
    list(template.run_many_iter(_scenarios(), cache=cache_dir))
    outcomes = list(template.run_many_iter(_scenarios(), cache=cache_dir))
    assert all(o.cached for o in outcomes)


def _sweep_in_fresh_process(network, cache_dir: str, out_path: str) -> None:
    """One full sweep as a separate process would run it: fresh memory
    tier, fresh accountant — only the cache directory is shared."""
    accountant = PrivacyAccountant()
    template = StressTest(network).program("eisenberg-noe").seed(SEED)
    batch = template.run_many(_scenarios(), accountant=accountant, cache=cache_dir)
    Path(out_path).write_text(
        json.dumps(
            {
                "aggregates": batch.aggregates(),
                "cached": {o.name: o.cached for o in batch},
                "hits": batch.cache_hits,
                "misses": batch.cache_misses,
                "epsilon_charged": batch.epsilon_charged,
                "spent": accountant.spent,
            }
        )
    )


def test_sweep_survives_a_process_restart(network, tmp_path):
    """The acceptance bar: the second process performs zero engine
    executions and zero epsilon charges, and releases identical values."""
    ctx = multiprocessing.get_context("fork")
    cache_dir = str(tmp_path / "cache")
    reports = {}
    for label in ("cold", "warm"):
        out = tmp_path / f"{label}.json"
        proc = ctx.Process(
            target=_sweep_in_fresh_process, args=(network, cache_dir, str(out))
        )
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        reports[label] = json.loads(out.read_text())
    cold, warm = reports["cold"], reports["warm"]
    assert (cold["hits"], cold["misses"]) == (0, 3)
    assert cold["epsilon_charged"] == pytest.approx(0.3)
    assert cold["spent"] == pytest.approx(0.3)
    # the restarted process: all hits, no executions, no fresh budget
    assert (warm["hits"], warm["misses"]) == (3, 0)
    assert all(warm["cached"].values())
    assert warm["epsilon_charged"] == 0.0
    assert warm["spent"] == 0.0
    # bit-identical releases (JSON round-trips floats exactly)
    assert warm["aggregates"] == cold["aggregates"]


def test_over_cap_store_evicts_lru_but_keeps_sweep_bit_identical(template, tmp_path):
    reference = {
        o.name: o.result.aggregate for o in template.run_many(_scenarios(4))
    }
    probe = PersistentScenarioCache(tmp_path / "probe")
    template.run_many(_scenarios(1), cache=probe)
    entry_bytes = probe.total_bytes()

    # room for only ~2 of the 4 entries: the sweep still completes and
    # matches the uncapped reference bit for bit, evicting as it goes
    capped = PersistentScenarioCache(
        tmp_path / "capped", max_bytes=int(entry_bytes * 2.5), memory_tier=False
    )
    cold = template.run_many(_scenarios(4), cache=capped)
    assert capped.evictions > 0
    assert capped.total_bytes() <= capped.max_bytes
    assert {o.name: o.result.aggregate for o in cold} == reference

    rerun_cache = PersistentScenarioCache(
        tmp_path / "capped", max_bytes=int(entry_bytes * 2.5), memory_tier=False
    )
    warm = template.run_many(_scenarios(4), cache=rerun_cache)
    # the surviving entries hit; the evicted ones recompute — identically
    assert warm.cache_hits > 0 and warm.cache_misses > 0
    assert {o.name: o.result.aggregate for o in warm} == reference
