"""Cross-engine parity matrix: the correctness bar for every backend.

Engines (``plaintext``, ``fixed``, ``sharded`` at 1/2/3 shards,
``async`` at 1/4/16 tasks) x programs (``eisenberg-noe``,
``elliott-golub-jackson``) x graph generators (core-periphery,
scale-free), all under a fixed seed:

* every float-mode backend (``plaintext``, ``sharded@k``, ``async@t``)
  must produce a **bit-identical** pre-noise trajectory — not
  approximately equal: float addition is not associative, so bit-identity
  proves the sharded barrier merge and the async engine's
  completion-order-independent state assembly both preserve the reference
  evaluation order;
* the ``fixed`` backend must be bit-reproducible run-to-run and stay
  within quantization distance of the float oracle;
* the **secure column**: ``secure-async`` (the protocol scheduled over
  the transport bus) and the ``bitsliced`` backend (numpy lane GMW with
  the offline/online phase split, under both drivers) must release
  outputs **bit-identical** to ``secure`` — noise and all — and meter
  identical per-link traffic (the per-pair ``GMWTraffic.pair_bits``
  attribution lands on directed links) in every cell. The secure cells
  run on smaller graphs (full MPC per vertex per round) under the demo
  preset, but still sweep both programs and both graph generators.

Any future backend (remote, ...) earns its registry entry by joining
this matrix.
"""

import pytest

from repro import StressTest
from repro.mpc.bitslice import HAVE_NUMPY
from repro.crypto.rng import DeterministicRNG
from repro.finance import apply_shock, uniform_shock
from repro.graphgen import (
    CorePeripheryParams,
    ScaleFreeParams,
    core_periphery_network,
    scale_free_network,
)

SEED = 123
ITERATIONS = 4
#: generous bound on |float - fixed| per trajectory point: quantization in
#: fmt(16, 8) accumulates ~0.1 on these 10-bank networks (measured).
QUANTIZATION_TOLERANCE = 0.5

PROGRAMS = ("eisenberg-noe", "elliott-golub-jackson")
FLOAT_ENGINES = (
    ("plaintext", {}),
    ("sharded", {"shards": 1}),
    ("sharded", {"shards": 2}),
    ("sharded", {"shards": 3}),
    ("async", {"tasks": 1}),
    ("async", {"tasks": 4}),
    ("async", {"tasks": 16}),
)


def _core_periphery():
    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    return apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))


def _scale_free():
    net = scale_free_network(
        ScaleFreeParams(num_banks=10, attach_links=2, degree_cap=4),
        DeterministicRNG(12),
    )
    return apply_shock(net, uniform_shock(range(0, 3), 0.9, "hub-shock"))


GRAPHS = {"core-periphery": _core_periphery, "scale-free": _scale_free}


@pytest.fixture(scope="module")
def networks():
    return {name: build() for name, build in GRAPHS.items()}


@pytest.fixture(scope="module")
def float_references(networks):
    """Per (program, graph) cell: the plaintext trajectory all float-mode
    engines must reproduce bit-for-bit."""
    references = {}
    for program in PROGRAMS:
        for graph_name, network in networks.items():
            run = (
                StressTest(network)
                .program(program)
                .engine("plaintext")
                .seed(SEED)
                .run(iterations=ITERATIONS)
            )
            assert run.trajectory[-1] != 0.0, "shock produced no dynamics"
            references[(program, graph_name)] = run
    return references


@pytest.mark.parametrize("engine_name,options", FLOAT_ENGINES)
@pytest.mark.parametrize("program", PROGRAMS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_float_family_trajectories_bit_identical(
    networks, float_references, engine_name, options, program, graph_name
):
    reference = float_references[(program, graph_name)]
    result = (
        StressTest(networks[graph_name])
        .program(program)
        .engine(engine_name, **options)
        .seed(SEED)
        .run(iterations=ITERATIONS)
    )
    assert result.trajectory == reference.trajectory
    assert result.aggregate == reference.aggregate
    assert result.final_states == reference.final_states


@pytest.mark.parametrize("program", PROGRAMS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_fixed_engine_reproducible_and_near_float(
    networks, float_references, program, graph_name
):
    template = (
        StressTest(networks[graph_name]).program(program).engine("fixed").seed(SEED)
    )
    first = template.clone().run(iterations=ITERATIONS)
    second = template.clone().run(iterations=ITERATIONS)
    # bit-reproducible under the fixed seed
    assert first.trajectory == second.trajectory
    assert first.aggregate == second.aggregate
    # within quantization distance of the float oracle, pointwise
    reference = float_references[(program, graph_name)]
    assert len(first.trajectory) == len(reference.trajectory)
    for fixed_point, float_point in zip(first.trajectory, reference.trajectory):
        assert abs(fixed_point - float_point) <= QUANTIZATION_TOLERANCE


# ------------------------------------------------------- the secure column --

#: Secure cells run full MPC per vertex per round, so they sweep smaller
#: graphs than the float family — but still both programs x both
#: generators, and the identity bar is *released* outputs, noise included.
SECURE_ITERATIONS = 2


def _small_core_periphery():
    net = core_periphery_network(
        CorePeripheryParams(num_banks=6, core_size=2), DeterministicRNG(11)
    )
    return apply_shock(net, uniform_shock(range(0, 2), 0.9, "core-shock"))


def _small_scale_free():
    net = scale_free_network(
        ScaleFreeParams(num_banks=6, attach_links=1, degree_cap=3),
        DeterministicRNG(12),
    )
    return apply_shock(net, uniform_shock(range(0, 2), 0.9, "hub-shock"))


SECURE_GRAPHS = {
    "core-periphery": _small_core_periphery,
    "scale-free": _small_scale_free,
}


@pytest.fixture(scope="module")
def secure_networks():
    return {name: build() for name, build in SECURE_GRAPHS.items()}


@pytest.fixture(scope="module")
def secure_references(secure_networks):
    """Per (program, graph) cell: the sequential secure release every
    transport-scheduled run must reproduce bit-for-bit."""
    references = {}
    for program in PROGRAMS:
        for graph_name, network in secure_networks.items():
            references[(program, graph_name)] = (
                StressTest(network)
                .program(program)
                .engine("secure")
                .preset("demo")
                .run(iterations=SECURE_ITERATIONS)
            )
    return references


_needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: Every secure variant must reproduce the sequential scalar release.
SECURE_VARIANTS = (
    pytest.param("secure-async", {"tasks": 4}, id="secure-async"),
    pytest.param(
        "secure", {"backend": "bitsliced"}, id="secure-bitsliced", marks=_needs_numpy
    ),
    pytest.param(
        "secure-async",
        {"tasks": 4, "backend": "bitsliced"},
        id="secure-async-bitsliced",
        marks=_needs_numpy,
    ),
)


@pytest.mark.parametrize("engine_name,options", SECURE_VARIANTS)
@pytest.mark.parametrize("program", PROGRAMS)
@pytest.mark.parametrize("graph_name", sorted(SECURE_GRAPHS))
def test_secure_variants_release_bit_identical(
    secure_networks, secure_references, engine_name, options, program, graph_name
):
    reference = secure_references[(program, graph_name)]
    result = (
        StressTest(secure_networks[graph_name])
        .program(program)
        .engine(engine_name, **options)
        .preset("demo")
        .run(iterations=SECURE_ITERATIONS)
    )
    # the release itself: aggregate includes the in-MPC sampled noise
    assert result.aggregate == reference.aggregate
    assert result.noise_raw == reference.noise_raw
    assert result.pre_noise_aggregate == reference.pre_noise_aggregate
    assert result.trajectory == reference.trajectory
    # metered traffic: per-link GMW byte attribution (GMWTraffic.pair_bits
    # landing on directed links) and the OT totals, bit-identical
    assert result.traffic.links() == reference.traffic.links()
    assert result.extras["gmw_ot_count"] == reference.extras["gmw_ot_count"]
    assert result.extras["transfer_count"] == reference.extras["transfer_count"]
