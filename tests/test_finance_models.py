"""Tests for the financial network model and both contagion solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError, SensitivityError
from repro.finance import (
    Bank,
    FinancialNetwork,
    apply_shock,
    check_leverage_bound,
    clearing_vector,
    egj_fixpoint,
    egj_risk_report,
    egj_sensitivity,
    eisenberg_noe_sensitivity,
    en_risk_report,
    uniform_shock,
)


class TestNetworkModel:
    def test_duplicate_bank_rejected(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0))
        with pytest.raises(ConfigurationError):
            net.add_bank(Bank(0))

    def test_contract_endpoints_validated(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0))
        with pytest.raises(ConfigurationError):
            net.add_debt(0, 1, 5.0)
        with pytest.raises(ConfigurationError):
            net.add_debt(0, 0, 5.0)

    def test_negative_debt_rejected(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0))
        net.add_bank(Bank(1))
        with pytest.raises(ConfigurationError):
            net.add_debt(0, 1, -1.0)

    def test_holding_fraction_range(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0))
        net.add_bank(Bank(1))
        with pytest.raises(ConfigurationError):
            net.add_holding(0, 1, 1.5)

    def test_obligations_and_credits(self, small_en_network):
        assert small_en_network.total_obligations(0) == 6.0
        assert small_en_network.total_credits(3) == 4.0

    def test_graph_views(self, small_en_network, small_egj_network):
        en_graph = small_en_network.to_en_graph()
        assert en_graph.num_vertices == 4
        assert en_graph.num_edges == 4
        egj_graph = small_egj_network.to_egj_graph()
        assert egj_graph.num_edges == 3
        # Edge data lands on the right endpoints.
        holder = egj_graph.vertex(1)  # bank 1 holds 40% of bank 0
        slot = holder.in_slot(0)
        assert holder.data[f"in_insh_{slot}"] == 0.4


class TestEisenbergNoe:
    def test_no_debt_no_shortfall(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0, cash=1.0))
        net.add_bank(Bank(1, cash=1.0))
        result = clearing_vector(net)
        assert result.total_shortfall == 0.0
        assert result.defaulters == []

    def test_solvent_network_pays_in_full(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0, cash=10.0))
        net.add_bank(Bank(1, cash=10.0))
        net.add_debt(0, 1, 5.0)
        result = clearing_vector(net)
        assert result.payments[0] == pytest.approx(5.0)
        assert result.total_shortfall == pytest.approx(0.0)

    def test_known_cascade(self, small_en_network):
        result = clearing_vector(small_en_network)
        # Bank 0 can pay only 2 of 6; banks 1 and 2 receive prorated
        # payments and bank 1 defaults too.
        assert result.payments[0] == pytest.approx(2.0)
        assert 0 in result.defaulters and 1 in result.defaulters
        assert result.total_shortfall == pytest.approx(14.0 / 3.0, abs=1e-6)

    def test_payments_bounded_by_obligations(self, small_en_network):
        result = clearing_vector(small_en_network)
        for bank, payment in result.payments.items():
            assert 0.0 <= payment <= result.obligations[bank] + 1e-9

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=scale(15), deadline=None)
    def test_shortfall_nonnegative_random_networks(self, seed):
        from repro.graphgen import RandomNetworkParams, random_network

        net = random_network(
            RandomNetworkParams(num_banks=12, mean_degree=3, degree_cap=6),
            DeterministicRNG(seed),
        )
        result = clearing_vector(net)
        assert result.total_shortfall >= -1e-9

    def test_more_cash_weakly_reduces_shortfall(self, small_en_network):
        richer = apply_shock(small_en_network, uniform_shock([0], 0.0))
        richer.banks[0].cash += 10.0
        assert (
            clearing_vector(richer).total_shortfall
            <= clearing_vector(small_en_network).total_shortfall + 1e-9
        )


class TestEGJ:
    def test_healthy_network_no_shortfall(self, small_egj_network):
        result = egj_fixpoint(small_egj_network, iterations=8)
        assert result.total_shortfall == pytest.approx(0.0)
        assert result.distressed == []

    def test_shock_creates_shortfall(self, small_egj_network):
        shocked = apply_shock(small_egj_network, uniform_shock([1, 2], 0.9))
        result = egj_fixpoint(shocked, iterations=8)
        assert result.total_shortfall > 0
        assert len(result.distressed) >= 1

    def test_penalty_discontinuity(self):
        """A bank just under threshold loses the full penalty."""
        net = FinancialNetwork()
        net.add_bank(Bank(0, base_assets=4.9, orig_value=10.0, threshold=5.0, penalty=2.0))
        result = egj_fixpoint(net, iterations=2)
        assert result.values[0] == pytest.approx(2.9)

    def test_convergence_monotone_after_shock(self, small_egj_network):
        """[39]: values converge monotonically, so longer runs only lower
        (or preserve) the reached valuation."""
        shocked = apply_shock(small_egj_network, uniform_shock([1], 0.95))
        previous = None
        for iterations in (1, 2, 4, 8):
            result = egj_fixpoint(shocked, iterations)
            if previous is not None:
                for bank in result.values:
                    assert result.values[bank] <= previous[bank] + 1e-9
            previous = result.values

    def test_cross_holdings_propagate(self):
        net = FinancialNetwork()
        net.add_bank(Bank(0, base_assets=0.5, orig_value=10.0, threshold=4.0, penalty=1.0))
        net.add_bank(Bank(1, base_assets=6.0, orig_value=10.0, threshold=4.0, penalty=1.0))
        net.add_holding(1, 0, 0.5)  # 1 holds half of 0
        result = egj_fixpoint(net, iterations=10)
        # Bank 0 collapses; bank 1's value drops below its standalone 6+5.
        assert result.values[1] < 11.0


class TestRiskReports:
    def test_en_report(self, small_en_network):
        report = en_risk_report(clearing_vector(small_en_network))
        assert report.model == "eisenberg-noe"
        assert report.total_dollar_shortfall > 0
        assert report.num_failures == len(report.failed_banks)
        assert report.worst_bank in report.per_bank_shortfall

    def test_egj_report(self, small_egj_network):
        shocked = apply_shock(small_egj_network, uniform_shock([1, 2], 0.9))
        result = egj_fixpoint(shocked, iterations=8)
        thresholds = {b: shocked.banks[b].threshold for b in shocked.bank_ids()}
        report = egj_risk_report(result, thresholds)
        assert report.total_dollar_shortfall == pytest.approx(result.total_shortfall)


class TestSensitivity:
    def test_paper_bounds(self):
        assert eisenberg_noe_sensitivity(0.1) == pytest.approx(10.0)
        assert egj_sensitivity(0.1) == pytest.approx(20.0)

    def test_invalid_leverage(self):
        with pytest.raises(SensitivityError):
            check_leverage_bound(0.0)
        with pytest.raises(SensitivityError):
            check_leverage_bound(1.5)

    def test_programs_report_bounds(self, fmt):
        from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram

        assert EisenbergNoeProgram(fmt, leverage_bound=0.1).sensitivity == 10.0
        assert ElliottGolubJacksonProgram(fmt, leverage_bound=0.1).sensitivity == 20.0


class TestShocks:
    def test_shock_scales_assets(self, small_en_network):
        shocked = apply_shock(small_en_network, uniform_shock([0], 0.5))
        assert shocked.banks[0].cash == pytest.approx(1.0)
        assert small_en_network.banks[0].cash == pytest.approx(2.0)  # original intact

    def test_unknown_target_rejected(self, small_en_network):
        with pytest.raises(ConfigurationError):
            apply_shock(small_en_network, uniform_shock([99], 0.5))

    def test_invalid_severity(self):
        with pytest.raises(ConfigurationError):
            uniform_shock([0], 1.5)

    def test_empty_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_shock([], 0.5)

    def test_severity_monotone(self, small_en_network):
        shortfalls = []
        for severity in (0.0, 0.5, 1.0):
            shocked = apply_shock(small_en_network, uniform_shock([0], severity))
            shortfalls.append(clearing_vector(shocked).total_shortfall)
        assert shortfalls == sorted(shortfalls)
