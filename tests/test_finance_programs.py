"""Tests for the Figure 2 vertex programs (float and circuit forms)."""

import pytest

from repro.core.engine import PlaintextEngine
from repro.crypto.rng import DeterministicRNG
from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram
from repro.mpc.fixedpoint import FixedPointFormat
from repro.mpc.gmw import GMWEngine


class TestRegisterLayout:
    def test_en_registers(self, fmt):
        program = EisenbergNoeProgram(fmt)
        registers = program.state_registers(3)
        assert "prorate" in registers and "shortfall" in registers
        assert "debt_2" in registers and "credit_2" in registers
        assert program.aggregate_register == "shortfall"

    def test_egj_registers(self, fmt):
        program = ElliottGolubJacksonProgram(fmt)
        registers = program.state_registers(2)
        assert {"value", "base", "orig_value", "threshold", "penalty"} <= set(registers)
        assert "insh_1" in registers and "orig_1" in registers

    def test_initial_state_covers_registers(self, small_en_network, fmt):
        program = EisenbergNoeProgram(fmt)
        graph = small_en_network.to_en_graph(degree_bound=2)
        for view in graph.vertices():
            state = program.initial_state(view, 2)
            assert set(state) == set(program.state_registers(2))

    def test_en_total_debt_initialized(self, small_en_network, fmt):
        program = EisenbergNoeProgram(fmt)
        graph = small_en_network.to_en_graph(degree_bound=2)
        state = program.initial_state(graph.vertex(0), 2)
        assert state["total_debt"] == pytest.approx(6.0)
        assert state["prorate"] == 1.0


class TestCircuitShape:
    @pytest.mark.parametrize("program_cls", [EisenbergNoeProgram, ElliottGolubJacksonProgram])
    def test_buses_match_contract(self, program_cls, fmt):
        program = program_cls(fmt)
        degree = 2
        circuit = program.build_update_circuit(degree)
        expected_inputs = set(program.state_registers(degree)) | {
            f"msg_in_{t}" for t in range(degree)
        }
        expected_outputs = set(program.state_registers(degree)) | {
            f"msg_out_{t}" for t in range(degree)
        }
        assert set(circuit.input_buses) == expected_inputs
        assert set(circuit.output_buses) == expected_outputs
        for wires in circuit.input_buses.values():
            assert len(wires) == fmt.total_bits

    def test_circuit_size_grows_with_degree(self, fmt):
        program = EisenbergNoeProgram(fmt)
        small = program.build_update_circuit(1).stats().and_gates
        large = program.build_update_circuit(4).stats().and_gates
        assert large > small

    def test_circuit_data_oblivious(self, fmt):
        """Same circuit topology regardless of inputs: gate count is a
        static property (no data-dependent control flow, §3.7)."""
        program = ElliottGolubJacksonProgram(fmt)
        c1 = program.build_update_circuit(2)
        c2 = program.build_update_circuit(2)
        assert len(c1.gates) == len(c2.gates)


class TestCircuitVsFloat:
    def test_en_circuit_tracks_float(self, small_en_network, fmt):
        program = EisenbergNoeProgram(fmt)
        graph = small_en_network.to_en_graph(degree_bound=2)
        view = graph.vertex(0)
        state_f = program.initial_state(view, 2)
        state_c = program.encode_state(state_f)
        messages_f = [0.0, 0.0]
        messages_c = [fmt.encode(0.0)] * 2
        for _ in range(3):
            state_f, out_f = program.float_update(state_f, messages_f, 2)
            state_c, out_c = program.circuit_update(state_c, messages_c, 2)
            for reg in program.state_registers(2):
                assert fmt.decode(state_c[reg]) == pytest.approx(state_f[reg], abs=0.05)
            messages_f = [min(m + 0.5, 1.5) for m in out_f]
            messages_c = [fmt.encode(fmt.decode(m) + 0.5 if fmt.decode(m) + 0.5 <= 1.5 else 1.5) for m in out_c]

    def test_egj_circuit_tracks_float(self, small_egj_network, fmt):
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        engine = PlaintextEngine(program)
        float_run = engine.run_float(graph, iterations=4)
        fixed_run = engine.run_fixed(graph, iterations=4)
        for vertex in float_run.final_states:
            assert fixed_run.final_states[vertex]["value"] == pytest.approx(
                float_run.final_states[vertex]["value"], abs=0.2
            )


class TestUnderGMW:
    """One computation step of each program under real GMW shares."""

    @pytest.mark.parametrize("program_cls", [EisenbergNoeProgram, ElliottGolubJacksonProgram])
    def test_gmw_step_matches_clear_circuit(self, program_cls, small_en_network, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = program_cls(fmt)
        network = small_en_network if program_cls is EisenbergNoeProgram else small_egj_network
        graph = (
            network.to_en_graph(2)
            if program_cls is EisenbergNoeProgram
            else network.to_egj_graph(2)
        )
        rng = DeterministicRNG("gmw-step")
        circuit = program.build_update_circuit(2)
        engine = GMWEngine(3)
        view = graph.vertex(0)
        raw_state = program.encode_state(program.initial_state(view, 2))
        raw_messages = [fmt.encode(0.1), fmt.encode(0.0)]

        shares = {
            name: engine.share_input(fmt.to_unsigned(value), fmt.total_bits, rng)
            for name, value in raw_state.items()
        }
        for slot, message in enumerate(raw_messages):
            shares[f"msg_in_{slot}"] = engine.share_input(
                fmt.to_unsigned(message), fmt.total_bits, rng
            )
        result = engine.evaluate(circuit, shares, rng)

        clear_state, clear_out = program.circuit_update(raw_state, raw_messages, 2, circuit)
        for register, value in clear_state.items():
            assert fmt.from_unsigned(result.reveal(register)) == value
        for slot, message in enumerate(clear_out):
            assert fmt.from_unsigned(result.reveal(f"msg_out_{slot}")) == message
