"""Tests for the synthetic interbank network generators (Appendix C)."""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ConfigurationError
from repro.finance import clearing_vector
from repro.graphgen import (
    CorePeripheryParams,
    RandomNetworkParams,
    ScaleFreeParams,
    core_periphery_network,
    random_network,
    scale_free_network,
)


class TestCorePeriphery:
    def test_default_shape_matches_appendix_c(self):
        net = core_periphery_network()
        assert net.num_banks == 50
        # 10-bank dense core: core banks are the largest.
        core_assets = [net.banks[b].orig_value for b in range(10)]
        periphery_assets = [net.banks[b].orig_value for b in range(10, 50)]
        assert min(core_assets) > max(periphery_assets)

    def test_core_is_densely_connected(self):
        net = core_periphery_network()
        core_edges = sum(1 for d in net.debts if d.debtor < 10 and d.creditor < 10)
        assert core_edges > 0.5 * 10 * 9 * 0.8  # density 0.8, directed pairs

    def test_periphery_links_to_core(self):
        net = core_periphery_network()
        for bank in range(10, 50):
            creditors = {d.creditor for d in net.debts if d.debtor == bank}
            assert creditors  # borrows from someone
            assert all(c < 10 for c in creditors)  # ... and only from core

    def test_deterministic_given_seed(self):
        a = core_periphery_network(rng=DeterministicRNG(5))
        b = core_periphery_network(rng=DeterministicRNG(5))
        assert len(a.debts) == len(b.debts)
        assert a.banks[0].cash == b.banks[0].cash

    def test_healthy_baseline_low_shortfall(self):
        """Without a shock the network clears with bounded losses."""
        net = core_periphery_network()
        result = clearing_vector(net)
        total_debt = sum(d.amount for d in net.debts)
        assert result.total_shortfall < 0.5 * total_debt

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            CorePeripheryParams(num_banks=5, core_size=10)
        with pytest.raises(ConfigurationError):
            CorePeripheryParams(periphery_links=0)


class TestScaleFree:
    def test_hub_structure(self):
        net = scale_free_network(ScaleFreeParams(num_banks=60, attach_links=2, degree_cap=30))
        degree = {b: 0 for b in net.bank_ids()}
        for debt in net.debts:
            degree[debt.debtor] += 1
            degree[debt.creditor] += 1
        degrees = sorted(degree.values(), reverse=True)
        # Heavy-tailed: the biggest hub has several times the median degree.
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_degree_cap_respected(self):
        params = ScaleFreeParams(num_banks=40, attach_links=3, degree_cap=8)
        net = scale_free_network(params)
        assert net.max_debt_degree() <= 2 * params.degree_cap  # two debts per link

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ScaleFreeParams(num_banks=2, attach_links=2)
        with pytest.raises(ConfigurationError):
            ScaleFreeParams(degree_cap=1, attach_links=2)


class TestRandomNetwork:
    def test_size_and_cap(self):
        params = RandomNetworkParams(num_banks=30, mean_degree=4, degree_cap=6)
        net = random_network(params)
        assert net.num_banks == 30
        assert net.max_debt_degree() <= 6
        assert net.max_holding_degree() <= 6

    def test_mean_degree_close_to_target(self):
        params = RandomNetworkParams(num_banks=80, mean_degree=5, degree_cap=15)
        net = random_network(params, DeterministicRNG(3))
        actual = len(net.debts) / params.num_banks
        assert actual == pytest.approx(5, abs=1.5)

    def test_graph_views_respect_bound(self):
        params = RandomNetworkParams(num_banks=25, mean_degree=3, degree_cap=5)
        net = random_network(params)
        graph = net.to_en_graph(degree_bound=5)
        assert graph.max_degree() <= 5

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            RandomNetworkParams(num_banks=1)
        with pytest.raises(ConfigurationError):
            RandomNetworkParams(mean_degree=0)


class TestLeverageDiscipline:
    """All generators produce banks within the fixed-point-friendly scale
    and with nonnegative balance sheets."""

    @pytest.mark.parametrize(
        "factory",
        [core_periphery_network, scale_free_network, random_network],
        ids=["core-periphery", "scale-free", "random"],
    )
    def test_balance_sheets_positive_and_bounded(self, factory):
        net = factory()
        for bank in net.banks.values():
            assert bank.cash >= 0
            assert bank.base_assets >= 0
            assert bank.orig_value < 120  # fits FixedPointFormat(16, 8)
