"""The shared run lifecycle: stage parity, the release seam, admission.

Every backend executes through :func:`repro.core.lifecycle.run_lifecycle`;
these tests pin the guarantees that refactor introduced:

* **Stage parity** — all seven engines emit the same ordered ``stage:*``
  phase names through the one ``timed_phase`` path.
* **Continual release** — ``release="windowed"`` splits the §3.6 round
  schedule into windows, each publishing its own noised value; every
  window's release is bit-identical to the release an equivalent
  standalone run ending at the same round would publish, the sum of
  per-window charges equals the accountant's ledger ``spent``, and the
  ledger reconciles.
* **Convergence unification** — ``converged_at`` is one definition
  (:class:`~repro.core.convergence.TrajectoryConvergence`), so the
  plaintext and secure engines report the same stopping round on the
  seed network.
* **Admission** — :func:`repro.privacy.admission.precharge` charges a
  whole schedule atomically and refunds exactly the windows that never
  released.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Bank, FinancialNetwork, PrivacyAccountant, StressTest
from repro.core.lifecycle import (
    MAX_WINDOWS,
    STAGES,
    OneShotRelease,
    WindowedRelease,
    resolve_release_policy,
)
from repro.exceptions import (
    ConfigurationError,
    ScenarioValidationError,
)
from repro.privacy.admission import (
    Precharge,
    precharge,
    release_epsilon,
    release_schedule,
)
from repro.service.scenario_ast import validate_scenario

ALL_ENGINES = (
    "plaintext",
    "fixed",
    "sharded",
    "async",
    "secure",
    "secure-async",
    "naive-mpc",
)

#: Engines whose released values are floats of the plaintext oracle
#: family — their windowed releases are bit-comparable to standalone
#: runs (the secure family's noise stream position differs by design;
#: its *pre-noise* values are compared instead).
FLOAT_FAMILY = ("plaintext", "fixed", "sharded", "async", "naive-mpc")

WINDOW_EPSILON = 0.1


def make_network() -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


def make_test() -> StressTest:
    return (
        StressTest(make_network())
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def run_windowed(engine: str, windows, iterations: int, accountant=None):
    session = make_test().engine(
        engine, release="windowed", windows=windows, window_epsilon=WINDOW_EPSILON
    )
    if accountant is not None:
        session.privacy(accountant=accountant)
    return session.run(iterations=iterations)


# ------------------------------------------------------------ stage parity --


class TestStageParity:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_every_engine_emits_the_same_ordered_stages(self, engine):
        result = make_test().engine(engine).run(iterations=2)
        stages = [
            key for key in result.phases.seconds if key.startswith("stage:")
        ]
        assert stages == [f"stage:{name}" for name in STAGES]

    def test_stage_timings_are_nonnegative(self):
        result = make_test().engine("plaintext").run(iterations=2)
        for name in STAGES:
            assert result.phases.seconds[f"stage:{name}"] >= 0.0

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_windowed_run_repeats_round_stages_per_window(self, engine):
        result = run_windowed(engine, [2, 2], 4)
        stages = [
            key for key in result.phases.seconds if key.startswith("stage:")
        ]
        # PhaseTimer accumulates by key: the order is still the canonical
        # stage order even though rounds..release ran once per window
        assert stages == [f"stage:{name}" for name in STAGES]
        assert result.extras["windows"] == 2.0


# ------------------------------------------------------- windowed releases --


class TestWindowedRelease:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_one_release_record_per_window(self, engine):
        result = run_windowed(engine, [2, 2], 4)
        assert [r.window for r in result.releases] == [0, 1]
        assert [r.end for r in result.releases] == [2, 4]
        assert all(r.epsilon == WINDOW_EPSILON for r in result.releases)
        # the headline fields describe the last window's release
        last = result.releases[-1]
        assert result.aggregate == last.value
        assert result.pre_noise_aggregate == last.pre_noise
        assert result.noise_raw == last.noise_raw

    @pytest.mark.parametrize("engine", FLOAT_FAMILY)
    def test_windows_bit_identical_to_standalone_runs(self, engine):
        split = run_windowed(engine, [2, 2], 4)
        first = run_windowed(engine, [2], 2)
        second = run_windowed(engine, [4], 4)
        assert split.releases[0].value == first.releases[0].value
        assert split.releases[0].noise_raw == first.releases[0].noise_raw
        assert split.releases[1].value == second.releases[0].value
        assert split.releases[1].noise_raw == second.releases[0].noise_raw

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_windowed_pre_noise_matches_oneshot(self, engine):
        windowed = run_windowed(engine, [2, 2], 4)
        oneshot = make_test().engine(engine).run(iterations=4)
        assert windowed.trajectory == oneshot.trajectory
        assert windowed.exact_aggregate == oneshot.exact_aggregate

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_per_window_charges_sum_to_ledger_spent(self, engine):
        accountant = PrivacyAccountant(epsilon_max=4.0)
        result = run_windowed(engine, [1, 2, 1], 4, accountant=accountant)
        charged = sum(r.epsilon for r in result.releases)
        assert accountant.spent == pytest.approx(charged)
        assert result.epsilon == pytest.approx(charged)
        reconciliation = accountant.reconcile()
        assert reconciliation.ok
        assert [c.label for c in accountant.ledger] == [
            "eisenberg-noe-release-w1"
            if engine != "naive-mpc"
            else "eisenberg-noe-naive-release-w1",
            "eisenberg-noe-release-w2"
            if engine != "naive-mpc"
            else "eisenberg-noe-naive-release-w2",
            "eisenberg-noe-release-w3"
            if engine != "naive-mpc"
            else "eisenberg-noe-naive-release-w3",
        ]

    @settings(max_examples=12, deadline=None)
    @given(
        windows=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)
    )
    def test_windowed_schedule_property(self, windows):
        """Any window split of the round schedule charges exactly its
        per-window epsilons, reconciles, and each window's release is
        bit-identical to a standalone windowed run ending at the same
        cumulative round."""
        iterations = sum(windows)
        accountant = PrivacyAccountant(epsilon_max=float(len(windows)))
        split = run_windowed("plaintext", windows, iterations, accountant=accountant)
        assert len(split.releases) == len(windows)
        assert accountant.spent == pytest.approx(
            sum(r.epsilon for r in split.releases)
        )
        assert accountant.reconcile().ok
        for record in split.releases:
            standalone = run_windowed("plaintext", [record.end], record.end)
            assert record.value == standalone.releases[0].value
            assert record.noise_raw == standalone.releases[0].noise_raw

    def test_failed_schedule_refunds_everything(self):
        accountant = PrivacyAccountant(epsilon_max=4.0)
        with pytest.raises(ConfigurationError):
            # windows cover 4 rounds, the run asks for 5: refused before
            # any round executes — and the budget must stay untouched
            run_windowed("plaintext", [2, 2], 5, accountant=accountant)
        assert accountant.spent == 0
        assert accountant.reconcile().ok


# ---------------------------------------------------------- release policy --


class TestReleasePolicy:
    def test_oneshot_is_the_default(self):
        policy = resolve_release_policy()
        assert isinstance(policy, OneShotRelease)
        assert policy.window_schedule(7) == [7]

    def test_windows_require_windowed_release(self):
        with pytest.raises(ConfigurationError):
            resolve_release_policy("oneshot", windows=[2, 2])
        with pytest.raises(ConfigurationError):
            resolve_release_policy("windowed")
        with pytest.raises(ConfigurationError):
            resolve_release_policy("bogus")

    def test_window_counts_validated(self):
        with pytest.raises(ConfigurationError):
            WindowedRelease(())
        with pytest.raises(ConfigurationError):
            WindowedRelease((2, 0))
        with pytest.raises(ConfigurationError):
            WindowedRelease(tuple([1] * (MAX_WINDOWS + 1)))

    def test_unaffordable_window_epsilon_refused(self):
        # demo preset budget is far below 8 x 1.0
        with pytest.raises(ConfigurationError):
            make_test().engine(
                "plaintext", release="windowed", windows=[1] * 8, window_epsilon=1.0
            ).run(iterations=8)

    def test_policy_object_rejects_redundant_options(self):
        with pytest.raises(ConfigurationError):
            resolve_release_policy(WindowedRelease((2,)), windows=[2])


# ------------------------------------------------------------- convergence --


class TestConvergenceUnification:
    @pytest.mark.parametrize("tolerance", [1e-6, 1e-3, 1e-2])
    def test_plaintext_and_secure_agree_on_stopping_round(self, tolerance):
        plain = make_test().engine("plaintext").run(iterations=6)
        secure = make_test().engine("secure").run(iterations=6)
        assert plain.converged_at(tolerance) == secure.converged_at(tolerance)
        assert plain.converged_at(tolerance) is not None

    def test_raw_results_share_the_definition(self):
        plain = make_test().engine("plaintext").run(iterations=6)
        secure = make_test().engine("secure").run(iterations=6)
        assert plain.raw.converged_at() == plain.converged_at()
        assert secure.raw.converged_at() == secure.converged_at()


# --------------------------------------------------------------- admission --


class TestAdmission:
    def test_release_schedule_itemizes_windows(self):
        engine = make_test().engine(
            "plaintext", release="windowed", windows=[2, 2], window_epsilon=0.1
        )
        resolved = engine.resolve(4)
        schedule = release_schedule(resolved.engine, resolved.config, "risk")
        assert schedule == [("risk-w1", 0.1), ("risk-w2", 0.1)]
        assert release_epsilon(resolved.engine, resolved.config) == pytest.approx(0.2)

    def test_non_releasing_engine_has_empty_schedule(self):
        resolved = make_test().engine("plaintext").resolve(2)
        assert release_schedule(resolved.engine, resolved.config, "risk") == []
        assert release_epsilon(resolved.engine, resolved.config) == 0.0

    def test_precharge_is_atomic(self):
        accountant = PrivacyAccountant(epsilon_max=0.25)
        from repro.exceptions import PrivacyBudgetExceeded

        with pytest.raises(PrivacyBudgetExceeded):
            precharge(accountant, [("a-w1", 0.2), ("a-w2", 0.2)])
        # the first window's charge was rolled back with the refusal
        assert accountant.spent == 0
        assert accountant.reconcile().ok

    def test_refund_returns_only_unconfirmed_charges(self):
        accountant = PrivacyAccountant(epsilon_max=1.0)
        admitted = precharge(accountant, [("a-w1", 0.2), ("a-w2", 0.2)])
        assert isinstance(admitted, Precharge)
        assert admitted.epsilon == pytest.approx(0.4)
        admitted.confirm()
        admitted.refund()  # window 1 released; window 2 never did
        assert accountant.spent == pytest.approx(0.2)
        assert accountant.reconcile().ok

    def test_precharge_without_accountant_is_none(self):
        assert precharge(None, [("a", 0.1)]) is None
        assert precharge(PrivacyAccountant(epsilon_max=1.0), []) is None


# ------------------------------------------------------------- scenario AST --


class TestWindowedScenarioAST:
    def doc(self, **engine_options):
        return {
            "version": 1,
            "name": "windowed-wire",
            "network": {
                "generator": "core-periphery",
                "params": {"num_banks": 16, "core_size": 4},
                "seed": 7,
            },
            "program": "eisenberg-noe",
            "engine": {"name": "plaintext", "options": engine_options},
            "epsilon": 0.4,
            "iterations": 4,
        }

    def test_windowed_options_validate(self):
        validated = validate_scenario(
            self.doc(release="windowed", windows=[2, 2], window_epsilon=0.2)
        )
        assert validated.engine_options["windows"] == (2, 2)

    def test_windows_must_sum_to_iterations(self):
        with pytest.raises(ScenarioValidationError):
            validate_scenario(
                self.doc(release="windowed", windows=[2, 3], window_epsilon=0.2)
            )

    def test_windows_require_windowed(self):
        with pytest.raises(ScenarioValidationError):
            validate_scenario(self.doc(windows=[2, 2]))

    def test_auto_iterations_rejected_for_windowed(self):
        doc = self.doc(release="windowed", windows=[2, 2], window_epsilon=0.2)
        doc["iterations"] = "auto"
        with pytest.raises(ScenarioValidationError):
            validate_scenario(doc)
