"""Parity-locked tests for the bit-sliced GMW backend.

The acceptance bar for :mod:`repro.mpc.bitslice` is *transcript
equivalence*, not approximate correctness: the lane evaluator must
produce the same output **shares** (stronger than the same revealed
values), the same :class:`~repro.mpc.gmw.GMWTraffic` — down to
``pair_bits`` dict insertion order, which downstream float metering
iterates — and consume the parent RNG stream byte-for-byte like the
scalar engine, because every later fork in a secure run keys off that
stream. Offline pools must be sized exactly from
:func:`repro.mpc.cost.gmw_cost` and fail loudly when over-drawn.
"""

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.group import TOY_GROUP_64
from repro.crypto.ot import DDHObliviousTransfer
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import (
    ConfigurationError,
    OfflinePoolExhaustedError,
    ProtocolError,
)
from repro.mpc import bitslice
from repro.mpc.bitslice import (
    LANE_BITS,
    BitslicedGMWEngine,
    lane_words,
    pack_bits,
    pack_lane_axis,
    unpack_bits,
    unpack_lane_axis,
)
from repro.mpc.builder import CircuitBuilder
from repro.mpc.circuit import Circuit, GateOp, layerize
from repro.mpc.cost import gmw_cost
from repro.mpc.gmw import GMWEngine
from repro.sharing.xor import share_value


def mixed_circuit(width=6):
    """Adder + multiplier + comparator: XOR, AND, and NOT gates at several
    depths, so layered evaluation has real structure to get wrong."""
    builder = CircuitBuilder()
    x = builder.input_bus("x", width)
    y = builder.input_bus("y", width)
    builder.output_bus("sum", builder.add(x, y))
    builder.output_bus("prod", builder.mul(x, y))
    builder.output_bus("lt", [builder.lt_unsigned(x, y)])
    return builder.circuit


def shared_batch(engine, width, pairs, seed="inputs"):
    rng = DeterministicRNG(seed)
    return [
        {
            "x": engine.share_input(x, width, rng),
            "y": engine.share_input(y, width, rng),
        }
        for x, y in pairs
    ]


# ------------------------------------------------------------- lane codec --


class TestLaneCodec:
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    @settings(max_examples=scale(60), deadline=None)
    def test_pack_unpack_round_trip(self, bits):
        words = pack_bits(bits)
        assert words.shape == (lane_words(len(bits)),)
        assert unpack_bits(words, len(bits)) == bits

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=130),
        st.integers(),
    )
    @settings(max_examples=scale(40), deadline=None)
    def test_multi_axis_round_trip(self, rows, planes, lanes, seed):
        raw = DeterministicRNG(seed).randbytes(rows * planes * lanes)
        bits = (np.frombuffer(raw, dtype=np.uint8) & 1).reshape(rows, planes, lanes)
        words = pack_lane_axis(bits)
        assert words.shape == (rows, planes, lane_words(lanes))
        assert (unpack_lane_axis(words, lanes) == bits).all()

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=150),
        st.integers(),
    )
    @settings(max_examples=scale(60), deadline=None)
    def test_lane_xor_and_semantics_match_scalar(self, a_bits, seed):
        b_bits = [
            byte & 1 for byte in DeterministicRNG(seed).randbytes(len(a_bits))
        ]
        a, b = pack_bits(a_bits), pack_bits(b_bits)
        assert unpack_bits(a ^ b, len(a_bits)) == [
            x ^ y for x, y in zip(a_bits, b_bits)
        ]
        assert unpack_bits(a & b, len(a_bits)) == [
            x & y for x, y in zip(a_bits, b_bits)
        ]

    @pytest.mark.parametrize("count", [1, 63, 64, 65, 100, 128, 129])
    def test_ragged_tail_bits_stay_zero(self, count):
        """Canonical form: lanes past ``count`` are zero even when the
        input would set them — array equality in the parity tests depends
        on it."""
        words = pack_bits([1] * count)
        tail = count % LANE_BITS
        if tail:
            assert int(words[-1]) == (1 << tail) - 1
        assert unpack_bits(words, count) == [1] * count

    def test_rejects_non_bits(self):
        with pytest.raises(ProtocolError):
            pack_bits([0, 2, 1])
        with pytest.raises(ProtocolError):
            unpack_lane_axis(np.zeros(1, dtype=np.uint64), LANE_BITS + 1)


# -------------------------------------------------------- layer schedule --


class TestLayerize:
    def test_layers_respect_dependencies_and_cover_all_gates(self):
        circuit = mixed_circuit()
        produced = set()  # constants + inputs available at level 0
        seen = []
        for layer in layerize(circuit):
            for gate in layer.gates:
                inputs = {gate.a} if gate.op is GateOp.NOT else {gate.a, gate.b}
                for wire in inputs:
                    # produced by an earlier layer, or primary
                    assert wire in produced or wire not in {
                        g.out for g in circuit.gates
                    }
                seen.append(gate)
            produced.update(g.out for g in layer.gates)
        assert sorted(seen, key=lambda g: g.out) == sorted(
            circuit.gates, key=lambda g: g.out
        )

    def test_and_ordinals_follow_gate_list_order(self):
        circuit = mixed_circuit()
        ordinal_of = {}
        for layer in layerize(circuit):
            for gate, ordinal in zip(layer.gates, layer.and_ordinals):
                ordinal_of[gate.out] = ordinal
        expected = 0
        for gate in circuit.gates:
            if gate.op is GateOp.AND:
                assert ordinal_of[gate.out] == expected
                expected += 1

    def test_same_op_chain_splits_into_layers(self):
        """a^b^c^d built as a chain must not collapse into one XOR layer
        (each link reads the previous link's output)."""
        circuit = Circuit()
        wires = [circuit.new_wire() for _ in range(4)]
        acc = wires[0]
        for wire in wires[1:]:
            acc = circuit.add_gate(GateOp.XOR, acc, wire)
        layers = layerize(circuit)
        assert [layer.level for layer in layers] == [1, 2, 3]


# ------------------------------------------------------ transcript parity --


class TestTranscriptParity:
    @pytest.mark.parametrize("mode", ["ot", "beaver"])
    @pytest.mark.parametrize("parties", [2, 3, 4])
    def test_single_evaluate_is_bit_identical_to_scalar(self, mode, parties):
        circuit = mixed_circuit()
        scalar = GMWEngine(parties, mode=mode)
        sliced = BitslicedGMWEngine(parties, mode=mode)
        shares = shared_batch(scalar, 6, [(37, 52)])[0]
        scalar_rng = DeterministicRNG("parity")
        sliced_rng = DeterministicRNG("parity")
        ref = scalar.evaluate(circuit, shares, scalar_rng)
        got = sliced.evaluate(circuit, shares, sliced_rng)
        # shares, not just revealed values
        assert got.output_shares == ref.output_shares
        assert got.bus_widths == ref.bus_widths
        # traffic, including pair_bits *insertion order*
        assert list(got.traffic.pair_bits.items()) == list(
            ref.traffic.pair_bits.items()
        )
        assert got.traffic.sent_bits == ref.traffic.sent_bits
        assert got.traffic.received_bits == ref.traffic.received_bits
        assert got.traffic.ot_count == ref.traffic.ot_count
        assert got.traffic.rounds == ref.traffic.rounds
        # parent stream consumed byte-for-byte (later forks key off it)
        assert scalar_rng.randbytes(32) == sliced_rng.randbytes(32)

    @pytest.mark.parametrize("mode", ["ot", "beaver"])
    def test_batch_matches_back_to_back_scalar_evaluations(self, mode):
        circuit = mixed_circuit()
        parties = 3
        scalar = GMWEngine(parties, mode=mode)
        sliced = BitslicedGMWEngine(parties, mode=mode)
        pairs = [(i * 7 % 64, (63 - i * 11) % 64) for i in range(5)]
        inputs = shared_batch(scalar, 6, pairs)
        scalar_rng = DeterministicRNG("batch")
        sliced_rng = DeterministicRNG("batch")
        refs = [scalar.evaluate(circuit, shares, scalar_rng) for shares in inputs]
        gots = sliced.evaluate_batch(circuit, inputs, sliced_rng)
        for ref, got in zip(refs, gots):
            assert got.output_shares == ref.output_shares
            assert list(got.traffic.pair_bits.items()) == list(
                ref.traffic.pair_bits.items()
            )
        assert scalar_rng.randbytes(32) == sliced_rng.randbytes(32)

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
        st.integers(),
    )
    @settings(max_examples=scale(10), deadline=None)
    def test_property_reveals_match_plaintext_and_scalar(self, x, y, seed):
        circuit = mixed_circuit()
        plain = circuit.evaluate({"x": x, "y": y})
        sliced = BitslicedGMWEngine(3)
        shares = shared_batch(sliced, 6, [(x, y)], seed=seed)[0]
        result = sliced.evaluate(circuit, shares, DeterministicRNG(seed))
        for bus in ("sum", "prod", "lt"):
            assert result.reveal(bus) == plain[bus]

    def test_ot_pool_replays_scalar_draw_order(self):
        """OT-mode mask bits: pool entry (gate g, sender i, receiver j)
        must be the bit the scalar engine's ``party_rngs[i]`` would hand
        gate g — forks and draws in transcript order."""
        circuit = mixed_circuit(4)
        parties = 3
        engine = BitslicedGMWEngine(parties, mode="ot")
        pools = engine.precompute(circuit, 1, DeterministicRNG("replay"))
        rng = DeterministicRNG("replay")
        party_rngs = [rng.fork(f"gmw-party-{p}") for p in range(parties)]
        for g in range(circuit.stats().and_gates):
            for i in range(parties):
                for j in range(parties):
                    if i != j:
                        expected = party_rngs[i].randbit()
                        assert int(pools.ot_masks[g, i, j, 0] & np.uint64(1)) == expected

    def test_beaver_pool_replays_scalar_draw_order(self):
        """Beaver triples: pool consumption order equals the scalar
        transcript's parent-rng draw order under ``DeterministicRNG.fork``."""
        circuit = mixed_circuit(4)
        parties = 3
        engine = BitslicedGMWEngine(parties, mode="beaver")
        pools = engine.precompute(circuit, 1, DeterministicRNG("replay"))
        rng = DeterministicRNG("replay")
        for p in range(parties):  # evaluate() forks these first
            rng.fork(f"gmw-party-{p}")
        for g in range(circuit.stats().and_gates):
            a_plain = rng.randbit()
            b_plain = rng.randbit()
            for component, plain in (
                (pools.triple_a, a_plain),
                (pools.triple_b, b_plain),
                (pools.triple_c, a_plain & b_plain),
            ):
                expected = share_value(plain, 1, parties, rng)
                lane0 = [int(component[g, p, 0] & np.uint64(1)) for p in range(parties)]
                assert lane0 == expected

    def test_iknp_vectorized_transpose_bit_identical(self):
        """The batched-matrix pivot in ot_extension must equal the scalar
        bit loop for every width, ragged or aligned."""
        from repro.crypto import ot_extension as oe

        rng = DeterministicRNG("transpose")
        for count in (1, 7, 64, 65, 523):
            cols = [rng.randbits(count) for _ in range(80)]
            assert oe._transpose_bits_numpy(cols, count) == oe._transpose_bits_python(
                cols, count
            )


# ------------------------------------------------- offline/online account --


class TestOfflineAccounting:
    @pytest.mark.parametrize("mode", ["ot", "beaver"])
    @pytest.mark.parametrize("parties", [2, 4])
    def test_pools_sized_exactly_from_cost_model(self, mode, parties):
        circuit = mixed_circuit()
        engine = BitslicedGMWEngine(parties, mode=mode)
        cost = gmw_cost(circuit, parties, 0, 0, mode=mode)
        lanes = 3
        pools = engine.precompute(circuit, lanes, DeterministicRNG("size"))
        assert pools.and_gates == cost.and_gates
        assert pools.num_instances == lanes
        words = lane_words(lanes)
        if mode == "ot":
            assert pools.ot_masks.shape == (cost.and_gates, parties, parties, words)
        else:
            assert cost.beaver_triples == cost.and_gates
            for component in (pools.triple_a, pools.triple_b, pools.triple_c):
                assert component.shape == (cost.and_gates, parties, words)
        # online phase consumes every provisioned gate exactly once:
        # no under-provision (it would raise), no over-provision
        inputs = shared_batch(engine, 6, [(1, 2), (3, 4), (5, 6)])
        assert pools.remaining == cost.and_gates
        engine.evaluate_batch(circuit, inputs, pools=pools)
        assert pools.remaining == 0

    def test_consuming_a_pool_twice_raises_named_error(self):
        circuit = mixed_circuit()
        engine = BitslicedGMWEngine(3)
        inputs = shared_batch(engine, 6, [(9, 9)])
        pools = engine.precompute(circuit, 1, DeterministicRNG("again"))
        engine.evaluate_batch(circuit, inputs, pools=pools)
        with pytest.raises(OfflinePoolExhaustedError):
            engine.evaluate_batch(circuit, inputs, pools=pools)

    def test_pool_for_smaller_circuit_raises_named_error(self):
        """A pool built for the wrong circuit must fail loudly, never fall
        back to drawing fresh scalar randomness."""
        small = CircuitBuilder()
        a = small.input_bus("x", 2)
        b = small.input_bus("y", 2)
        small.output_bus("sum", small.bitwise_and(a, b))
        engine = BitslicedGMWEngine(3)
        pools = engine.precompute(small.circuit, 1, DeterministicRNG("small"))
        big = mixed_circuit()
        inputs = shared_batch(engine, 6, [(9, 9)])
        with pytest.raises(OfflinePoolExhaustedError):
            engine.evaluate_batch(big, inputs, pools=pools)

    def test_instance_count_mismatch_raises_named_error(self):
        circuit = mixed_circuit()
        engine = BitslicedGMWEngine(3)
        pools = engine.precompute(circuit, 2, DeterministicRNG("short"))
        inputs = shared_batch(engine, 6, [(1, 1), (2, 2), (3, 3)])
        with pytest.raises(OfflinePoolExhaustedError):
            engine.evaluate_batch(circuit, inputs, pools=pools)

    def test_mode_mismatched_pool_rejected(self):
        circuit = mixed_circuit()
        ot_engine = BitslicedGMWEngine(3, mode="ot")
        beaver_engine = BitslicedGMWEngine(3, mode="beaver")
        pools = ot_engine.precompute(circuit, 1, DeterministicRNG("mode"))
        inputs = shared_batch(ot_engine, 6, [(1, 1)])
        with pytest.raises(ProtocolError):
            beaver_engine.evaluate_batch(circuit, inputs, pools=pools)

    def test_batch_without_rng_or_pools_rejected(self):
        engine = BitslicedGMWEngine(3)
        circuit = mixed_circuit()
        with pytest.raises(ProtocolError):
            engine.evaluate_batch(circuit, shared_batch(engine, 6, [(1, 1)]))


# ---------------------------------------------------------------- guards --


class TestGuards:
    def test_rng_consuming_ot_backend_rejected(self):
        """DDH/IKNP backends draw per-transfer randomness the offline
        phase cannot replay — constructing the engine with one must fail."""
        with pytest.raises(ProtocolError):
            BitslicedGMWEngine(2, ot=DDHObliviousTransfer(TOY_GROUP_64))

    def test_missing_numpy_raises_configuration_error(self, monkeypatch):
        monkeypatch.setattr(bitslice, "HAVE_NUMPY", False)
        with pytest.raises(ConfigurationError):
            bitslice.require_numpy()

    def test_unknown_secure_backend_rejected(self):
        from repro.api.registry import get_engine

        with pytest.raises(ConfigurationError):
            get_engine("secure", backend="vectorized")
        with pytest.raises(ConfigurationError):
            get_engine("secure-async", backend="vectorized")
