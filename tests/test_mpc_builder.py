"""Tests for the arithmetic circuit builder against Python int semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.exceptions import CircuitError
from repro.mpc.builder import CircuitBuilder
from repro.mpc.fixedpoint import FixedPointBuilder, FixedPointFormat

WORD = 12
MASK = (1 << WORD) - 1
words = st.integers(min_value=0, max_value=MASK)
signed_words = st.integers(min_value=-(1 << (WORD - 1)), max_value=(1 << (WORD - 1)) - 1)


def build_and_eval(construct, inputs):
    """Build a circuit with the given constructor and evaluate it."""
    builder = CircuitBuilder()
    buses = {name: builder.input_bus(name, WORD) for name in inputs}
    outputs = construct(builder, buses)
    for name, wires in outputs.items():
        builder.output_bus(name, wires if isinstance(wires, list) else [wires])
    return builder.circuit.evaluate(inputs)


def to_signed(value, width=WORD):
    value &= (1 << width) - 1
    return value - (1 << width) if value >> (width - 1) else value


class TestAddSub:
    @given(words, words)
    @settings(max_examples=scale(60))
    def test_add_wraps(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"s": bld.add(bus["a"], bus["b"])}, {"a": a, "b": b}
        )
        assert out["s"] == (a + b) & MASK

    @given(words, words)
    @settings(max_examples=scale(60))
    def test_sub_wraps(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"d": bld.sub(bus["a"], bus["b"])}, {"a": a, "b": b}
        )
        assert out["d"] == (a - b) & MASK

    @given(words)
    @settings(max_examples=scale(30))
    def test_negate(self, a):
        out = build_and_eval(lambda bld, bus: {"n": bld.negate(bus["a"])}, {"a": a})
        assert out["n"] == (-a) & MASK

    @given(words, words)
    @settings(max_examples=scale(30))
    def test_borrow_flag(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"lt": bld.sub_with_borrow(bus["a"], bus["b"])[1]},
            {"a": a, "b": b},
        )
        assert out["lt"] == (1 if a < b else 0)


class TestComparison:
    @given(words, words)
    @settings(max_examples=scale(60))
    def test_lt_unsigned(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"lt": bld.lt_unsigned(bus["a"], bus["b"])},
            {"a": a, "b": b},
        )
        assert out["lt"] == (1 if a < b else 0)

    @given(words, words)
    @settings(max_examples=scale(60))
    def test_lt_signed(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"lt": bld.lt_signed(bus["a"], bus["b"])},
            {"a": a, "b": b},
        )
        assert out["lt"] == (1 if to_signed(a) < to_signed(b) else 0)

    @given(words, words)
    @settings(max_examples=scale(40))
    def test_eq(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {"eq": bld.eq(bus["a"], bus["b"])}, {"a": a, "b": b}
        )
        assert out["eq"] == (1 if a == b else 0)

    @given(words)
    @settings(max_examples=scale(20))
    def test_is_zero(self, a):
        out = build_and_eval(lambda bld, bus: {"z": bld.is_zero(bus["a"])}, {"a": a})
        assert out["z"] == (1 if a == 0 else 0)


class TestSelection:
    @given(words, words, st.integers(min_value=0, max_value=1))
    @settings(max_examples=scale(40))
    def test_mux(self, a, b, sel):
        def construct(bld, bus):
            select = bus["s"][0]
            return {"m": bld.mux(select, bus["a"], bus["b"])}

        builder = CircuitBuilder()
        buses = {
            "a": builder.input_bus("a", WORD),
            "b": builder.input_bus("b", WORD),
            "s": builder.input_bus("s", 1),
        }
        builder.output_bus("m", builder.mux(buses["s"][0], buses["a"], buses["b"]))
        out = builder.circuit.evaluate({"a": a, "b": b, "s": sel})
        assert out["m"] == (a if sel else b)

    @given(words, words)
    @settings(max_examples=scale(30))
    def test_min_max_unsigned(self, a, b):
        out = build_and_eval(
            lambda bld, bus: {
                "mn": bld.min_unsigned(bus["a"], bus["b"]),
                "mx": bld.max_unsigned(bus["a"], bus["b"]),
            },
            {"a": a, "b": b},
        )
        assert out["mn"] == min(a, b)
        assert out["mx"] == max(a, b)

    @given(words)
    @settings(max_examples=scale(30))
    def test_abs_and_relu(self, a):
        out = build_and_eval(
            lambda bld, bus: {
                "abs": bld.abs_signed(bus["a"]),
                "relu": bld.relu(bus["a"]),
            },
            {"a": a},
        )
        sa = to_signed(a)
        assert to_signed(out["abs"]) == abs(sa) or (sa == -(1 << (WORD - 1)))
        assert out["relu"] == (a if sa >= 0 else 0)


class TestMulDiv:
    @given(words, words)
    @settings(max_examples=scale(50))
    def test_mul_full(self, a, b):
        builder = CircuitBuilder()
        ba = builder.input_bus("a", WORD)
        bb = builder.input_bus("b", WORD)
        builder.output_bus("p", builder.mul_full(ba, bb))
        out = builder.circuit.evaluate({"a": a, "b": b})
        assert out["p"] == a * b

    @given(signed_words, signed_words)
    @settings(max_examples=scale(50))
    def test_mul_full_signed(self, a, b):
        builder = CircuitBuilder()
        ba = builder.input_bus("a", WORD)
        bb = builder.input_bus("b", WORD)
        builder.output_bus("p", builder.mul_full_signed(ba, bb))
        out = builder.circuit.evaluate({"a": a & MASK, "b": b & MASK})
        assert to_signed(out["p"], 2 * WORD) == a * b

    @given(words, st.integers(min_value=1, max_value=MASK))
    @settings(max_examples=scale(50))
    def test_div_unsigned(self, a, b):
        builder = CircuitBuilder()
        ba = builder.input_bus("a", WORD)
        bb = builder.input_bus("b", WORD)
        q, r = builder.div_unsigned(ba, bb)
        builder.output_bus("q", q)
        builder.output_bus("r", r)
        out = builder.circuit.evaluate({"a": a, "b": b})
        assert out["q"] == a // b
        assert out["r"] == a % b

    def test_div_by_zero_all_ones(self):
        builder = CircuitBuilder()
        ba = builder.input_bus("a", 8)
        bb = builder.input_bus("b", 8)
        q, _ = builder.div_unsigned(ba, bb)
        builder.output_bus("q", q)
        assert builder.circuit.evaluate({"a": 77, "b": 0})["q"] == 0xFF


class TestBusPlumbing:
    def test_extend_shrink_rejected(self):
        builder = CircuitBuilder()
        bus = builder.input_bus("a", 8)
        with pytest.raises(CircuitError):
            builder.zero_extend(bus, 4)
        with pytest.raises(CircuitError):
            builder.sign_extend(bus, 4)

    def test_shift_left_const(self):
        builder = CircuitBuilder()
        bus = builder.input_bus("a", 4)
        builder.output_bus("out", builder.shift_left_const(bus, 2))
        assert builder.circuit.evaluate({"a": 0b1011})["out"] == 0b101100

    @given(words, st.integers(min_value=0, max_value=WORD + 2))
    @settings(max_examples=scale(30))
    def test_shift_right_arithmetic(self, a, amount):
        builder = CircuitBuilder()
        bus = builder.input_bus("a", WORD)
        builder.output_bus("out", builder.shift_right_const(bus, amount, signed=True))
        out = builder.circuit.evaluate({"a": a})
        assert to_signed(out["out"]) == to_signed(a) >> amount

    def test_const_bus_negative(self):
        builder = CircuitBuilder()
        bus = builder.const_bus(-1, 8)
        builder.output_bus("out", bus)
        assert builder.circuit.evaluate({})["out"] == 0xFF


class TestFixedPointBuilder:
    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=0.5, max_value=100, allow_nan=False),
    )
    @settings(max_examples=scale(40))
    def test_fx_ops_match_mirrors(self, x, y):
        fmt = FixedPointFormat(16, 8)
        builder = FixedPointBuilder(fmt)
        a = builder.fx_input("a")
        b = builder.fx_input("b")
        builder.output_bus("add", builder.fx_add(a, b))
        builder.output_bus("sub", builder.fx_sub(a, b))
        builder.output_bus("mul", builder.fx_mul(a, b))
        builder.output_bus("div", builder.fx_div(a, b))
        ra, rb = fmt.encode(x), fmt.encode(y)
        out = builder.circuit.evaluate(
            {"a": fmt.to_unsigned(ra), "b": fmt.to_unsigned(rb)}
        )
        assert fmt.from_unsigned(out["add"]) == fmt.wrap(ra + rb)
        assert fmt.from_unsigned(out["sub"]) == fmt.wrap(ra - rb)
        assert fmt.from_unsigned(out["mul"]) == fmt.fx_mul(ra, rb)
        assert fmt.from_unsigned(out["div"]) == fmt.fx_div(ra, rb)

    def test_fx_div_by_zero_matches_mirror(self):
        fmt = FixedPointFormat(16, 8)
        builder = FixedPointBuilder(fmt)
        a = builder.fx_input("a")
        b = builder.fx_input("b")
        builder.output_bus("div", builder.fx_div(a, b))
        for x in (3.5, -3.5):
            ra = fmt.encode(x)
            out = builder.circuit.evaluate({"a": fmt.to_unsigned(ra), "b": 0})
            assert fmt.from_unsigned(out["div"]) == fmt.fx_div(ra, 0)

    def test_wrong_width_rejected(self):
        fmt = FixedPointFormat(16, 8)
        builder = FixedPointBuilder(fmt)
        narrow = builder.input_bus("n", 8)
        wide = builder.fx_input("w")
        with pytest.raises(CircuitError):
            builder.fx_mul(narrow, wide)
