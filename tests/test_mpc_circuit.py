"""Tests for the Boolean circuit IR and its plaintext evaluator."""

import pytest

from repro.exceptions import CircuitError
from repro.mpc.circuit import Circuit, GateOp


class TestConstruction:
    def test_constants_present(self):
        circuit = Circuit()
        assert circuit.zero == 0
        assert circuit.one == 1
        assert circuit.num_wires == 2

    def test_input_bus_wires(self):
        circuit = Circuit()
        wires = circuit.add_input_bus("a", 4)
        assert len(wires) == 4
        assert circuit.input_buses["a"] == wires

    def test_duplicate_bus_rejected(self):
        circuit = Circuit()
        circuit.add_input_bus("a", 2)
        with pytest.raises(CircuitError):
            circuit.add_input_bus("a", 2)

    def test_zero_width_rejected(self):
        with pytest.raises(CircuitError):
            Circuit().add_input_bus("a", 0)

    def test_duplicate_output_rejected(self):
        circuit = Circuit()
        wires = circuit.add_input_bus("a", 1)
        circuit.mark_output_bus("out", wires)
        with pytest.raises(CircuitError):
            circuit.mark_output_bus("out", wires)

    def test_out_of_range_wire_rejected(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.mark_output_bus("out", [999])


class TestConstantFolding:
    def test_xor_folds(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        assert circuit.xor(a, circuit.zero) == a
        assert circuit.xor(circuit.zero, a) == a
        assert circuit.xor(a, a) == circuit.zero
        assert len(circuit.gates) == 0

    def test_xor_with_one_becomes_not(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        out = circuit.xor(a, circuit.one)
        assert circuit.gates[-1].op is GateOp.NOT

    def test_and_folds(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        assert circuit.and_(a, circuit.zero) == circuit.zero
        assert circuit.and_(a, circuit.one) == a
        assert circuit.and_(a, a) == a
        assert len(circuit.gates) == 0

    def test_not_folds(self):
        circuit = Circuit()
        assert circuit.inv(circuit.zero) == circuit.one
        assert circuit.inv(circuit.one) == circuit.zero


class TestEvaluation:
    def test_truth_tables(self):
        for op, fn in [
            ("xor", lambda a, b: a ^ b),
            ("and", lambda a, b: a & b),
            ("or", lambda a, b: a | b),
        ]:
            circuit = Circuit()
            (a,) = circuit.add_input_bus("a", 1)
            (b,) = circuit.add_input_bus("b", 1)
            out = {
                "xor": circuit.xor,
                "and": circuit.and_,
                "or": circuit.or_,
            }[op](a, b)
            circuit.mark_output_bus("out", [out])
            for x in (0, 1):
                for y in (0, 1):
                    assert circuit.evaluate({"a": x, "b": y})["out"] == fn(x, y), op

    def test_missing_input_rejected(self):
        circuit = Circuit()
        circuit.add_input_bus("a", 1)
        with pytest.raises(CircuitError):
            circuit.evaluate({})

    def test_inputs_masked_to_width(self):
        circuit = Circuit()
        wires = circuit.add_input_bus("a", 4)
        circuit.mark_output_bus("out", wires)
        assert circuit.evaluate({"a": 0x1F})["out"] == 0xF


class TestStats:
    def test_gate_counts(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        (b,) = circuit.add_input_bus("b", 1)
        x = circuit.xor(a, b)
        y = circuit.and_(x, b)
        circuit.inv(y)
        stats = circuit.stats()
        assert stats.xor_gates == 1
        assert stats.and_gates == 1
        assert stats.not_gates == 1
        assert stats.total_gates == 3

    def test_and_depth_chain(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        (b,) = circuit.add_input_bus("b", 1)
        x = a
        for _ in range(5):
            x = circuit.add_gate(GateOp.AND, x, b)
        assert circuit.stats().and_depth == 5

    def test_xor_does_not_add_depth(self):
        circuit = Circuit()
        (a,) = circuit.add_input_bus("a", 1)
        (b,) = circuit.add_input_bus("b", 1)
        x = circuit.add_gate(GateOp.AND, a, b)
        for _ in range(10):
            x = circuit.add_gate(GateOp.XOR, x, b)
        assert circuit.stats().and_depth == 1
