"""Tests for the fixed-point format (encoding, wrapping, mirrors)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.exceptions import CircuitError
from repro.mpc.fixedpoint import FixedPointFormat


class TestFormat:
    def test_defaults_are_sane(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 16
        assert fmt.fraction_bits == 8
        assert fmt.scale == 256
        assert fmt.resolution == 1 / 256

    def test_range(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.max_raw == 32767
        assert fmt.min_raw == -32768
        assert fmt.max_value == pytest.approx(127.996, abs=1e-3)

    def test_invalid_formats_rejected(self):
        with pytest.raises(CircuitError):
            FixedPointFormat(1, 0)
        with pytest.raises(CircuitError):
            FixedPointFormat(8, 8)
        with pytest.raises(CircuitError):
            FixedPointFormat(8, -1)


class TestEncoding:
    @given(st.floats(min_value=-127, max_value=127, allow_nan=False))
    @settings(max_examples=scale(60))
    def test_roundtrip_within_resolution(self, value):
        fmt = FixedPointFormat(16, 8)
        assert abs(fmt.decode(fmt.encode(value)) - value) <= fmt.resolution / 2

    def test_clamping(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.encode(1e9) == fmt.max_raw
        assert fmt.encode(-1e9) == fmt.min_raw

    @given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
    @settings(max_examples=scale(60))
    def test_unsigned_pattern_roundtrip(self, raw):
        fmt = FixedPointFormat(16, 8)
        assert fmt.from_unsigned(fmt.to_unsigned(raw)) == raw

    @given(st.integers(min_value=-(1 << 20), max_value=1 << 20))
    @settings(max_examples=scale(60))
    def test_wrap_is_mod_2L(self, raw):
        fmt = FixedPointFormat(16, 8)
        wrapped = fmt.wrap(raw)
        assert fmt.min_raw <= wrapped <= fmt.max_raw
        assert (wrapped - raw) % (1 << 16) == 0

    def test_saturate(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.saturate(10**6) == fmt.max_raw
        assert fmt.saturate(-(10**6)) == fmt.min_raw
        assert fmt.saturate(1234) == 1234


class TestMirrors:
    """The plaintext mirrors define circuit semantics; spot-check algebra."""

    def test_fx_mul_exact_products(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.fx_mul(fmt.encode(1.5), fmt.encode(2.0)) == fmt.encode(3.0)
        assert fmt.fx_mul(fmt.encode(-1.5), fmt.encode(2.0)) == fmt.encode(-3.0)

    def test_fx_div_exact_quotients(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.fx_div(fmt.encode(3.0), fmt.encode(2.0)) == fmt.encode(1.5)
        assert fmt.fx_div(fmt.encode(-3.0), fmt.encode(2.0)) == fmt.encode(-1.5)

    @given(
        st.floats(min_value=0.1, max_value=50, allow_nan=False),
        st.floats(min_value=0.1, max_value=50, allow_nan=False),
    )
    @settings(max_examples=scale(40))
    def test_fx_div_close_to_real(self, x, y):
        fmt = FixedPointFormat(16, 8)
        result = fmt.decode(fmt.fx_div(fmt.encode(x), fmt.encode(y)))
        if abs(x / y) < fmt.max_value:
            # Quantizing the divisor by half an LSB perturbs the quotient
            # by about |x/y| * resolution / y; allow that plus an LSB.
            tolerance = fmt.resolution + abs(x / y) * fmt.resolution / y
            assert result == pytest.approx(x / y, abs=0.05 + tolerance)

    def test_one_is_multiplicative_identity(self):
        fmt = FixedPointFormat(16, 8)
        one = fmt.encode(1.0)
        for v in (0.0, 1.0, -2.5, 100.0):
            assert fmt.fx_mul(fmt.encode(v), one) == fmt.encode(v)
