"""Tests for the GMW engine: correctness, secrecy structure, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.group import TOY_GROUP_64
from repro.crypto.ot import DDHObliviousTransfer, SimulatedObliviousTransfer
from repro.crypto.ot_extension import IKNPOTExtension
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CircuitError, ProtocolError
from repro.mpc.builder import CircuitBuilder
from repro.mpc.cost import gmw_cost
from repro.mpc.gmw import GMWEngine
from repro.sharing import xor_all


def adder_circuit(width=8):
    builder = CircuitBuilder()
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    builder.output_bus("sum", builder.add(a, b))
    builder.output_bus("lt", [builder.lt_unsigned(a, b)])
    return builder.circuit


class TestCorrectness:
    @pytest.mark.parametrize("parties", [2, 3, 5])
    def test_adder_matches_plaintext(self, parties, rng):
        circuit = adder_circuit()
        engine = GMWEngine(parties)
        for a, b in [(0, 0), (255, 1), (100, 200), (7, 7)]:
            shares = {
                "a": engine.share_input(a, 8, rng),
                "b": engine.share_input(b, 8, rng),
            }
            result = engine.evaluate(circuit, shares, rng)
            assert result.reveal("sum") == (a + b) & 0xFF
            assert result.reveal("lt") == (1 if a < b else 0)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    @settings(max_examples=scale(15), deadline=None)
    def test_property_random_inputs(self, a, b):
        rng = DeterministicRNG(a * 257 + b)
        circuit = adder_circuit()
        engine = GMWEngine(3)
        shares = {
            "a": engine.share_input(a, 8, rng),
            "b": engine.share_input(b, 8, rng),
        }
        result = engine.evaluate(circuit, shares, rng)
        assert result.reveal("sum") == (a + b) & 0xFF

    def test_beaver_mode_matches_ot_mode(self, rng):
        circuit = adder_circuit()
        for a, b in [(13, 200), (0, 255)]:
            for mode in ("ot", "beaver"):
                engine = GMWEngine(4, mode=mode)
                shares = {
                    "a": engine.share_input(a, 8, rng),
                    "b": engine.share_input(b, 8, rng),
                }
                assert engine.evaluate(circuit, shares, rng).reveal("sum") == (a + b) & 0xFF

    def test_real_ddh_ot_backend(self, rng):
        """Full public-key OT under every AND gate (slow; tiny circuit)."""
        builder = CircuitBuilder()
        a = builder.input_bus("a", 2)
        b = builder.input_bus("b", 2)
        builder.output_bus("and", builder.bitwise_and(a, b))
        engine = GMWEngine(2, ot=DDHObliviousTransfer(TOY_GROUP_64))
        shares = {
            "a": engine.share_input(3, 2, rng),
            "b": engine.share_input(2, 2, rng),
        }
        assert engine.evaluate(builder.circuit, shares, rng).reveal("and") == 2

    def test_iknp_backend(self, rng):
        circuit = adder_circuit(4)
        ot = IKNPOTExtension(DDHObliviousTransfer(TOY_GROUP_64), kappa=16, batch_size=256)
        engine = GMWEngine(3, ot=ot)
        shares = {
            "a": engine.share_input(9, 4, rng),
            "b": engine.share_input(5, 4, rng),
        }
        assert engine.evaluate(circuit, shares, rng).reveal("sum") == 14


class TestShapeAndErrors:
    def test_single_party_rejected(self):
        with pytest.raises(ProtocolError):
            GMWEngine(1)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError):
            GMWEngine(3, mode="magic")

    def test_missing_input_shares(self, rng):
        circuit = adder_circuit()
        engine = GMWEngine(3)
        with pytest.raises(CircuitError):
            engine.evaluate(circuit, {"a": engine.share_input(1, 8, rng)}, rng)

    def test_wrong_share_count(self, rng):
        circuit = adder_circuit()
        engine = GMWEngine(3)
        shares = {"a": [1, 2], "b": [1, 2, 3]}
        with pytest.raises(ProtocolError):
            engine.evaluate(circuit, shares, rng)


class TestSecrecyStructure:
    def test_outputs_stay_shared(self, rng):
        """No single party's output share equals the plaintext — DStress
        never reveals intermediate values (§3.3)."""
        circuit = adder_circuit()
        engine = GMWEngine(4)
        plaintext_hits = 0
        for trial in range(20):
            a, b = rng.randbits(8), rng.randbits(8)
            shares = {
                "a": engine.share_input(a, 8, rng),
                "b": engine.share_input(b, 8, rng),
            }
            result = engine.evaluate(circuit, shares, rng)
            expected = (a + b) & 0xFF
            for party_share in result.output_shares["sum"]:
                if party_share == expected:
                    plaintext_hits += 1
        # Coincidental hits are possible (1/256 per share); systematic
        # leakage would produce ~80.
        assert plaintext_hits < 10

    def test_any_k_output_shares_not_determining(self, rng):
        """XOR of any strict subset of output shares varies run to run."""
        circuit = adder_circuit()
        engine = GMWEngine(3)
        partials = set()
        for _ in range(30):
            shares = {
                "a": engine.share_input(50, 8, rng),
                "b": engine.share_input(60, 8, rng),
            }
            result = engine.evaluate(circuit, shares, rng)
            partials.add(xor_all(result.output_shares["sum"][:2]))
        assert len(partials) > 10


class TestAccounting:
    def test_ot_count_formula(self, rng):
        """One OT per AND gate per ordered party pair."""
        circuit = adder_circuit()
        ands = circuit.stats().and_gates
        for parties in (2, 3, 5):
            engine = GMWEngine(parties)
            shares = {
                "a": engine.share_input(1, 8, rng),
                "b": engine.share_input(2, 8, rng),
            }
            result = engine.evaluate(circuit, shares, rng)
            assert result.traffic.ot_count == ands * parties * (parties - 1)

    def test_rounds_equal_and_depth(self, rng):
        circuit = adder_circuit()
        engine = GMWEngine(2)
        shares = {
            "a": engine.share_input(1, 8, rng),
            "b": engine.share_input(2, 8, rng),
        }
        result = engine.evaluate(circuit, shares, rng)
        assert result.traffic.rounds == circuit.stats().and_depth

    def test_per_party_traffic_linear_total_quadratic(self, rng):
        """The Figure 3/4 shape: per-party linear in block size, total
        quadratic."""
        circuit = adder_circuit()
        per_party = {}
        total = {}
        for parties in (2, 4, 8):
            engine = GMWEngine(parties)
            shares = {
                "a": engine.share_input(1, 8, rng),
                "b": engine.share_input(2, 8, rng),
            }
            traffic = engine.evaluate(circuit, shares, rng).traffic
            per_party[parties] = traffic.sent_bits[0]
            total[parties] = sum(traffic.sent_bits)
        assert per_party[4] == pytest.approx(per_party[2] * 3, rel=0.01)
        assert per_party[8] == pytest.approx(per_party[2] * 7, rel=0.01)
        assert total[4] == pytest.approx(total[2] * 6, rel=0.01)

    def test_matches_cost_model(self, rng):
        circuit = adder_circuit()
        parties = 3
        ot = SimulatedObliviousTransfer(TOY_GROUP_64)
        engine = GMWEngine(parties, ot=ot)
        shares = {
            "a": engine.share_input(1, 8, rng),
            "b": engine.share_input(2, 8, rng),
        }
        result = engine.evaluate(circuit, shares, rng)
        predicted = gmw_cost(
            circuit,
            parties,
            ot.sender_bytes_per_transfer(1),
            ot.receiver_bytes_per_transfer(1),
        )
        assert result.traffic.ot_count == predicted.total_ots
        assert sum(result.traffic.sent_bits) == predicted.parties * predicted.sent_bits_per_party

    @pytest.mark.parametrize("mode", ["ot", "beaver"])
    @pytest.mark.parametrize("parties", [2, 3, 4])
    def test_cost_model_matches_transcript_counts(self, mode, parties, rng):
        """Every ``gmw_cost`` field cross-checked against what the engine
        actually did — the bit-sliced offline phase sizes its randomness
        pools from these counts, so drift here would mis-provision pools
        (caught as ``OfflinePoolExhaustedError``) rather than just skew a
        projection. The historical drift: the model only described ``ot``
        mode, so beaver traffic/round predictions did not exist at all."""
        circuit = adder_circuit()
        engine = GMWEngine(parties, mode=mode)
        predicted = gmw_cost(
            circuit,
            parties,
            engine.ot.sender_bytes_per_transfer(1),
            engine.ot.receiver_bytes_per_transfer(1),
            mode=mode,
        )
        shares = {
            "a": engine.share_input(9, 8, rng),
            "b": engine.share_input(5, 8, rng),
        }
        traffic = engine.evaluate(circuit, shares, rng).traffic
        stats = circuit.stats()
        assert predicted.and_gates == stats.and_gates
        assert predicted.xor_gates == stats.xor_gates
        assert traffic.ot_count == predicted.total_ots
        assert traffic.rounds == predicted.rounds
        for party in range(parties):
            assert traffic.sent_bits[party] == predicted.sent_bits_per_party
        assert sum(traffic.sent_bits) == parties * predicted.sent_bits_per_party
        expected_triples = stats.and_gates if mode == "beaver" else 0
        assert predicted.beaver_triples == expected_triples

    def test_sent_received_balance(self, rng):
        circuit = adder_circuit()
        engine = GMWEngine(3)
        shares = {
            "a": engine.share_input(1, 8, rng),
            "b": engine.share_input(2, 8, rng),
        }
        traffic = engine.evaluate(circuit, shares, rng).traffic
        assert sum(traffic.sent_bits) == sum(traffic.received_bits)


class TestPairAttribution:
    """Block-granular traffic: the per-ordered-pair view must tile the
    per-party totals exactly, in both AND-gate backends — it is what the
    secure-async scheduler puts on the wire."""

    @pytest.mark.parametrize("mode", ["ot", "beaver"])
    @pytest.mark.parametrize("parties", [2, 3, 4])
    def test_pair_bits_sum_to_party_totals(self, parties, mode, rng):
        circuit = adder_circuit()
        engine = GMWEngine(parties, mode=mode)
        shares = {
            "a": engine.share_input(77, 8, rng),
            "b": engine.share_input(180, 8, rng),
        }
        result = engine.evaluate(circuit, shares, rng)
        traffic = result.traffic
        assert traffic.pair_bits, "an adder has AND gates, so bits must flow"
        for i in range(parties):
            sent = sum(bits for (src, _), bits in traffic.pair_bits.items() if src == i)
            received = sum(
                bits for (_, dst), bits in traffic.pair_bits.items() if dst == i
            )
            assert sent == traffic.sent_bits[i]
            assert received == traffic.received_bits[i]
        # no self-links, every pair is an ordered pair of distinct parties
        assert all(i != j for (i, j) in traffic.pair_bits)

    def test_pair_bytes_match_pair_bits(self, rng):
        circuit = adder_circuit()
        engine = GMWEngine(3)
        shares = {
            "a": engine.share_input(5, 8, rng),
            "b": engine.share_input(9, 8, rng),
        }
        traffic = engine.evaluate(circuit, shares, rng).traffic
        for pair, num_bytes in traffic.pair_bytes().items():
            assert num_bytes == traffic.pair_bits[pair] / 8.0

    def test_ot_mode_covers_all_ordered_pairs(self, rng):
        """OT-based AND gates touch every ordered pair of parties —
        exactly the quadratic cost structure of Figures 3-5."""
        circuit = adder_circuit()
        parties = 4
        engine = GMWEngine(parties)
        shares = {
            "a": engine.share_input(255, 8, rng),
            "b": engine.share_input(255, 8, rng),
        }
        traffic = engine.evaluate(circuit, shares, rng).traffic
        expected = {(i, j) for i in range(parties) for j in range(parties) if i != j}
        assert set(traffic.pair_bits) == expected
