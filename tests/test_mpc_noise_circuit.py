"""Tests for the in-MPC noise samplers (Dwork et al. style)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CircuitError
from repro.mpc.gmw import GMWEngine
from repro.mpc.noise_circuit import (
    build_noised_sum_bits_circuit,
    build_noised_sum_circuit,
    build_partial_sum_circuit,
    cdf_thresholds,
    geometric_bit_probabilities,
    geometric_bits_seed_width,
    sample_geometric_bits_plaintext,
    sample_noise_plaintext,
    two_sided_geometric_cdf,
)


class TestCdf:
    def test_cdf_is_valid(self):
        alpha = 0.8
        values = [two_sided_geometric_cdf(alpha, d) for d in range(-20, 21)]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert values == sorted(values)

    def test_cdf_symmetry(self):
        alpha = 0.6
        for d in range(0, 10):
            # P(Y <= -d-1) == P(Y >= d+1) == 1 - P(Y <= d)
            assert two_sided_geometric_cdf(alpha, -d - 1) == pytest.approx(
                1.0 - two_sided_geometric_cdf(alpha, d)
            )

    def test_pmf_ratio_is_alpha(self):
        alpha = 0.7
        pmf = lambda d: two_sided_geometric_cdf(alpha, d) - two_sided_geometric_cdf(alpha, d - 1)
        assert pmf(1) / pmf(0) == pytest.approx(alpha)
        assert pmf(5) / pmf(4) == pytest.approx(alpha)

    def test_bad_alpha_rejected(self):
        with pytest.raises(CircuitError):
            two_sided_geometric_cdf(1.0, 0)
        with pytest.raises(CircuitError):
            cdf_thresholds(0.0, 4, 16)


class TestCdfSampler:
    def test_circuit_matches_mirror(self):
        circuit = build_noised_sum_circuit(2, value_bits=10, alpha=0.75, bound=15, uniform_bits=20)
        width = len(circuit.output_buses["noised_sum"])
        rng = DeterministicRNG("cdf")
        for _ in range(30):
            u = rng.randbits(20)
            a, b = rng.randrange(0, 100), rng.randrange(0, 100)
            out = circuit.evaluate({"state_0": a, "state_1": b, "seed": u})
            got = out["noised_sum"]
            if got >> (width - 1):
                got -= 1 << width
            assert got == a + b + sample_noise_plaintext(0.75, 15, 20, u)

    def test_sample_range_bounded(self):
        rng = DeterministicRNG("range")
        for _ in range(200):
            sample = sample_noise_plaintext(0.9, 7, 16, rng.randbits(16))
            assert -7 <= sample <= 7


class TestBitsSampler:
    def test_bit_probabilities_shrink(self):
        probs = geometric_bit_probabilities(0.9, 10)
        assert probs == sorted(probs, reverse=True)
        assert all(0.0 < p < 1.0 for p in probs)

    def test_bit_probability_formula(self):
        alpha = 0.8
        probs = geometric_bit_probabilities(alpha, 4)
        for i, p in enumerate(probs):
            a = alpha ** (1 << i)
            assert p == pytest.approx(a / (1 + a))

    def test_seed_width(self):
        assert geometric_bits_seed_width(8, 16) == 256

    def test_circuit_matches_mirror(self):
        alpha, mb, pb = 0.85, 6, 10
        circuit = build_noised_sum_bits_circuit(2, 10, alpha, mb, pb)
        width = len(circuit.output_buses["noised_sum"])
        rng = DeterministicRNG("bits")
        for _ in range(30):
            seed = rng.randbits(geometric_bits_seed_width(mb, pb))
            a, b = rng.randrange(0, 60), rng.randrange(0, 60)
            out = circuit.evaluate({"state_0": a, "state_1": b, "seed": seed})
            got = out["noised_sum"]
            if got >> (width - 1):
                got -= 1 << width
            assert got == a + b + sample_geometric_bits_plaintext(alpha, mb, pb, seed)

    def test_distribution_statistics(self):
        """Mean ~0 and variance ~2a/(1-a)^2 for the two-sided geometric."""
        alpha, mb, pb = 0.8, 10, 16
        rng = DeterministicRNG("stats")
        samples = [
            sample_geometric_bits_plaintext(alpha, mb, pb, rng.randbits(geometric_bits_seed_width(mb, pb)))
            for _ in range(20000)
        ]
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        expected_var = 2 * alpha / (1 - alpha) ** 2
        assert abs(mean) < 0.2
        assert abs(var - expected_var) / expected_var < 0.15

    def test_dp_ratio_bound(self):
        """Empirical epsilon-DP check: P(X=d)/P(X=d+1) ~ 1/alpha."""
        alpha, mb, pb = 0.7, 8, 16
        rng = DeterministicRNG("dp")
        from collections import Counter

        counts = Counter(
            sample_geometric_bits_plaintext(alpha, mb, pb, rng.randbits(geometric_bits_seed_width(mb, pb)))
            for _ in range(40000)
        )
        for d in (0, 1, 2):
            ratio = counts[d + 1] / counts[d]
            assert ratio == pytest.approx(alpha, abs=0.08)

    def test_bits_sampler_much_smaller_than_cdf(self):
        """The reason the engine uses it: circuit size at realistic scale."""
        bits_circ = build_noised_sum_bits_circuit(1, 12, 0.999, magnitude_bits=14, precision_bits=16)
        cdf_circ = build_noised_sum_circuit(1, 12, 0.999, bound=512, uniform_bits=20)
        assert bits_circ.stats().and_gates < cdf_circ.stats().and_gates / 5

    def test_wrong_seed_width_rejected(self):
        from repro.mpc.builder import CircuitBuilder
        from repro.mpc.noise_circuit import build_geometric_bits_sampler

        builder = CircuitBuilder()
        seed = builder.input_bus("seed", 10)
        with pytest.raises(CircuitError):
            build_geometric_bits_sampler(builder, seed, 0.9, 4, 16, 8)


class TestPartialSum:
    def test_partial_sum_circuit(self):
        circuit = build_partial_sum_circuit(3, value_bits=8, output_bits=12)
        out = circuit.evaluate({"state_0": 100, "state_1": 27, "state_2": 3})
        assert out["partial_sum"] == 130

    def test_signed_inputs(self):
        circuit = build_partial_sum_circuit(2, value_bits=8, output_bits=12)
        # -1 (0xFF) + 5 = 4 with sign extension
        out = circuit.evaluate({"state_0": 0xFF, "state_1": 5})
        assert out["partial_sum"] == 4


class TestUnderGMW:
    def test_noised_sum_in_mpc(self):
        """The §3.6 aggregation circuit end-to-end under GMW."""
        alpha, mb, pb = 0.8, 5, 8
        circuit = build_noised_sum_bits_circuit(2, 8, alpha, mb, pb)
        width = len(circuit.output_buses["noised_sum"])
        rng = DeterministicRNG("gmw-noise")
        engine = GMWEngine(3)
        seed_width = geometric_bits_seed_width(mb, pb)
        seed = rng.randbits(seed_width)
        shares = {
            "state_0": engine.share_input(40, 8, rng),
            "state_1": engine.share_input(2, 8, rng),
            "seed": engine.share_input(seed, seed_width, rng),
        }
        result = engine.evaluate(circuit, shares, rng)
        got = result.reveal("noised_sum", signed=True)
        assert got == 42 + sample_geometric_bits_plaintext(alpha, mb, pb, seed)
