"""The multi-process cluster harness: one OS process per party.

This is the ISSUE's acceptance path, run as a test: a 3-party localhost
cluster (genuine ``fork``'d processes, every byte over real TCP) executes
``engine="secure-async"`` and releases output **bit-identical** to the
in-memory bus; and killing one peer mid-round (``die_at_round`` →
``os._exit(17)``) surfaces a *named* ``TransportError`` at a survivor
within the configured timeout — never a hang, never an anonymous crash.
"""

import pytest

from repro import StressTest
from repro.exceptions import ConfigurationError
from repro.finance import Bank, FinancialNetwork
from repro.net import ClusterRun, run_scenario_cluster

ITERATIONS = 2


def _build(party_id):
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return (
        StressTest(net)
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def _reference(engine):
    return _build(None).engine(engine).run(iterations=ITERATIONS)


class TestSecureAsyncCluster:
    def test_three_processes_release_bit_identical_output(self):
        reference = _reference("secure")
        outcomes = run_scenario_cluster(
            _build,
            num_parties=3,
            engine="secure-async",
            iterations=ITERATIONS,
            session="test-cluster-secure",
            timeout=120.0,
        )
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        for outcome in outcomes:
            summary = outcome.summary
            assert summary["aggregate"] == reference.aggregate
            assert summary["pre_noise_aggregate"] == reference.pre_noise_aggregate
            assert summary["noise_raw"] == reference.noise_raw
            assert summary["trajectory"] == reference.trajectory
            # the OT batches genuinely crossed process boundaries
            assert summary["extras"].get("wire_bytes_received", 0) > 0

    def test_async_cluster_matches_plaintext(self):
        reference = _reference("plaintext")
        outcomes = run_scenario_cluster(
            _build,
            num_parties=3,
            engine="async",
            iterations=ITERATIONS,
            session="test-cluster-async",
            timeout=60.0,
        )
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            assert outcome.summary["aggregate"] == reference.aggregate
            assert outcome.summary["trajectory"] == reference.trajectory


def _run_kill_chaos(victim, session_base):
    """Kill-chaos cluster run that retries the *injection* race.

    The never-hang guarantees are asserted on every attempt: no outcome
    is ever a harness timeout, and every non-victim outcome is either a
    clean finish or a named TransportError. The one racy part — whether
    the victim reaches its kill round before an unrelated abort beats it
    there — earns a retry, because chaos timing is the test's own doing.
    """
    last = None
    for attempt in range(3):
        outcomes = run_scenario_cluster(
            _build,
            num_parties=3,
            engine="async",
            iterations=ITERATIONS,
            session=f"{session_base}-{attempt}",
            io_timeout=8.0,
            timeout=60.0,
            die_at_round={victim: 1},
        )
        # nobody hung: the harness never had to declare a timeout
        assert all(o.status != "timeout" for o in outcomes)
        for outcome in outcomes:
            if outcome.party_id == victim:
                continue
            assert outcome.status in ("ok", "error")
            if outcome.status == "error":
                assert outcome.error_type in (
                    "PeerDisconnectedError",
                    "TransportTimeoutError",
                ), f"unexplained failure: {outcome}"
        by_party = {o.party_id: o for o in outcomes}
        last = (outcomes, by_party)
        if by_party[victim].status == "died":
            return last
    outcomes, by_party = last
    pytest.fail(
        f"party {victim} never reached its kill round in 3 attempts: "
        + "; ".join(f"{o.party_id}:{o.status}" for o in outcomes)
    )


class TestKillAPeer:
    def test_killed_peer_surfaces_named_error_not_hang(self):
        """Party 1 os._exit(17)s the first time round 1 touches its bus;
        a survivor that depended on it reports a named TransportError
        (via CTRL-less EOF) inside the io timeout — no outcome may be a
        harness-timeout, because a hang is exactly the bug."""
        outcomes, by_party = _run_kill_chaos(1, "test-cluster-kill")
        assert by_party[1].exit_code == 17
        named = [
            o
            for o in outcomes
            if o.status == "error"
            and o.error_type
            in ("PeerDisconnectedError", "TransportTimeoutError")
        ]
        assert named, (
            "no survivor surfaced a named TransportError: "
            + "; ".join(str(o) for o in outcomes)
        )
        for outcome in named:
            # the error names the link or the gather it broke
            assert "party" in outcome.error_message

    def test_survivor_without_wire_dependency_may_finish(self):
        """Every outcome is explained: the victim dies with the chaos
        exit code, and every other party either finishes cleanly (its
        gathers never crossed the dead party) or raises a named error —
        never an unexplained crash, never a hang."""
        _, by_party = _run_kill_chaos(2, "test-cluster-kill2")
        assert by_party[2].exit_code == 17


class TestHarnessContract:
    def test_cluster_run_rejects_bad_party_count(self):
        with pytest.raises(ConfigurationError, match="at least two"):
            run_scenario_cluster(_build, num_parties=0, timeout=10.0)


class TestClusterTrace:
    def test_traced_cluster_merges_timeline_and_reconciles_traffic(self, tmp_path):
        """ISSUE 8 acceptance: a traced 3-process run produces a merged
        timeline whose per-party round spans and per-link byte counters
        reconcile exactly with the protocol TrafficMeter — with released
        outputs bit-identical to the untraced reference run."""
        import json

        from repro.obs.merge import load_trace_shard

        reference = _reference("secure")
        trace_dir = tmp_path / "trace"
        outcomes = run_scenario_cluster(
            _build,
            num_parties=3,
            engine="secure-async",
            iterations=ITERATIONS,
            session="test-cluster-trace",
            timeout=120.0,
            trace_dir=str(trace_dir),
        )
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        # tracing left the released outputs bit-identical
        for outcome in outcomes:
            assert outcome.summary["aggregate"] == reference.aggregate
            assert outcome.summary["noise_raw"] == reference.noise_raw
            assert outcome.summary["trajectory"] == reference.trajectory

        timeline = json.loads((trace_dir / "timeline.json").read_text())
        assert timeline["schema"] == "dstress.obs.timeline"
        assert timeline["parties"] == [0, 1, 2]
        # every party recorded every round (ITERATIONS + the final step),
        # merged in causal (round, party) order
        keys = [(e["round"], e["party"]) for e in timeline["entries"]]
        assert keys == [
            (r, p) for r in range(ITERATIONS + 1) for p in range(3)
        ]

        # per-link byte counters reconcile exactly with the TrafficMeter:
        # replicated execution means each party's protocol meter equals
        # the reference run's, and link bytes sum to the metered total
        for outcome in outcomes:
            shard = load_trace_shard(outcome.summary["trace_shard"])
            traffic = shard["traffic"]
            assert traffic["total_bytes_sent"] == reference.traffic.total_bytes_sent
            link_sum = sum(nbytes for _, _, nbytes in traffic["links"])
            assert link_sum == pytest.approx(traffic["total_bytes_sent"])
            expected_links = {
                (src, dst): nbytes
                for (src, dst), nbytes in reference.traffic.links().items()
            }
            assert {
                (src, dst): nbytes for src, dst, nbytes in traffic["links"]
            } == expected_links
