"""TcpTransport over real localhost sockets (threads as parties).

These tests run a genuine mesh — every byte crosses an OS socket — but
host each party in a thread rather than a forked process, so the suite
stays fast; the separate-OS-process acceptance path lives in
``test_net_cluster.py``. The contract under test:

* **bit-identity** — ``engine="async"`` and ``engine="secure-async"``
  over a TCP mesh release exactly what the in-memory bus releases;
* **the sync path** — ``deliver_outboxes`` (sequential engines, the
  sharded barrier) travels the same wire;
* **chaos composition** — :class:`FaultInjectingTransport` wraps a
  ``TcpTransport``, so drop/duplicate chaos works against real sockets;
* **never a hang** — a peer that vanishes (abrupt socket death, no
  goodbye) or stalls surfaces a *named* ``TransportError`` within the
  configured timeout.
"""

import asyncio
import threading

import pytest

from repro import StressTest
from repro.core.transport import (
    FaultInjectingTransport,
    check_transport_spec,
    innermost_transport,
)
from repro.exceptions import (
    ConfigurationError,
    HandshakeError,
    PeerDisconnectedError,
    TransportError,
    TransportTimeoutError,
)
from repro.finance import Bank, FinancialNetwork
from repro.net.peer import PeerAddress, dial_peer
from repro.net.transport import ENV_PARTY, ENV_PEERS, TcpTransport, session_id

ITERATIONS = 2
IO_TIMEOUT = 10.0


def _network() -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


def _template():
    return (
        StressTest(_network())
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


def _mesh(num_parties, session, io_timeout=IO_TIMEOUT):
    transports = [
        TcpTransport(i, num_parties, session=session, io_timeout=io_timeout)
        for i in range(num_parties)
    ]
    peers = [
        PeerAddress(i, "127.0.0.1", t.listen()) for i, t in enumerate(transports)
    ]
    return transports, peers


def _run_parties(transports, peers, run_one, join_timeout=60.0):
    """Each party in its own thread: connect the mesh, run, report."""
    results = [None] * len(transports)
    errors = [None] * len(transports)

    def party(i):
        try:
            transports[i].connect(peers)
            results[i] = run_one(i, transports[i])
        except BaseException as exc:  # noqa: BLE001 - reported to the test
            errors[i] = exc

    threads = [
        threading.Thread(target=party, args=(i,), daemon=True)
        for i in range(len(transports))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout)
    hung = [i for i, thread in enumerate(threads) if thread.is_alive()]
    assert not hung, f"parties {hung} hung past the test deadline"
    return results, errors


def _close_all(transports):
    for transport in transports:
        transport.close()


def _assert_released_identical(summary, reference):
    assert summary.aggregate == reference.aggregate
    assert summary.trajectory == reference.trajectory


class TestAsyncEngineBitIdentity:
    def test_three_party_mesh_matches_in_memory(self):
        reference = _template().engine("async").run(iterations=ITERATIONS)
        transports, peers = _mesh(3, "test-async-mesh")
        try:
            results, errors = _run_parties(
                transports,
                peers,
                lambda i, bus: _template()
                .engine("async", transport=bus)
                .run(iterations=ITERATIONS),
            )
        finally:
            _close_all(transports)
        assert errors == [None, None, None]
        for result in results:
            _assert_released_identical(result, reference)
            # real frames moved: every party has genuine wire traffic
            assert result.extras["wire_bytes_sent"] > 0

    def test_wire_carries_only_cross_owner_edges(self):
        """A 1-party 'mesh' owns every vertex: nothing should hit a wire."""
        transport = TcpTransport(0, 1, session="solo")
        transport.listen()
        transport.connect([])
        try:
            result = (
                _template()
                .engine("async", transport=transport)
                .run(iterations=ITERATIONS)
            )
        finally:
            transport.close()
        assert result.extras["wire_bytes_sent"] == 0
        reference = _template().engine("async").run(iterations=ITERATIONS)
        _assert_released_identical(result, reference)


class TestSecureAsyncBitIdentity:
    def test_two_party_mesh_matches_secure_engine(self):
        reference = _template().engine("secure").run(iterations=ITERATIONS)
        transports, peers = _mesh(2, "test-secure-mesh")
        try:
            results, errors = _run_parties(
                transports,
                peers,
                lambda i, bus: _template()
                .engine("secure-async", transport=bus)
                .run(iterations=ITERATIONS),
            )
        finally:
            _close_all(transports)
        assert errors == [None, None]
        for result in results:
            assert result.aggregate == reference.aggregate
            assert result.pre_noise_aggregate == reference.pre_noise_aggregate
            assert result.noise_raw == reference.noise_raw
            assert result.trajectory == reference.trajectory
            # the OT batches genuinely travelled: megabytes, not frames
            assert result.extras["wire_bytes_sent"] > 1000


class TestSynchronousPath:
    def test_sharded_engine_routes_rounds_over_tcp(self):
        """deliver_outboxes is the same wire: the sequential round barrier
        crosses real sockets and stays bit-identical. (shards=1 keeps the
        inline path — forking workers from a threaded test is off-limits —
        which is exactly the synchronous deliver_outboxes contract.)"""
        reference = _template().engine("plaintext").run(iterations=ITERATIONS)
        transports, peers = _mesh(2, "test-sync-mesh")
        try:
            results, errors = _run_parties(
                transports,
                peers,
                lambda i, bus: _template()
                .engine("sharded", shards=1, transport=bus)
                .run(iterations=ITERATIONS),
            )
        finally:
            _close_all(transports)
        assert errors == [None, None]
        for result in results:
            _assert_released_identical(result, reference)


class TestFaultInjectionOverTcp:
    def test_drop_chaos_composes_over_real_sockets(self):
        """Every replica wraps its TCP bus with the same drop set; the
        victim's gather raises a named TransportError at every party
        instead of hanging any of them."""
        transports, peers = _mesh(2, "test-fault-mesh", io_timeout=5.0)
        try:
            results, errors = _run_parties(
                transports,
                peers,
                lambda i, bus: _template()
                .engine(
                    "async",
                    transport=FaultInjectingTransport(
                        drop={(1, 3, 1)}, inner=bus
                    ),
                )
                .run(iterations=ITERATIONS),
            )
        finally:
            _close_all(transports)
        assert results == [None, None]
        for error in errors:
            assert isinstance(error, TransportError)
            assert "dropped" in str(error)

    def test_wrapper_unwraps_for_metering(self):
        bus = TcpTransport(0, 1, session="unwrap")
        wrapper = FaultInjectingTransport(inner=bus)
        try:
            assert innermost_transport(wrapper) is bus
        finally:
            bus.close()


class TestFailureModes:
    def test_abrupt_peer_death_raises_named_error_not_hang(self):
        """Party 0 vanishes without a goodbye; party 1 — whose gathers
        genuinely wait on party 0's frames in this graph — surfaces
        PeerDisconnectedError within the io timeout."""
        transports, peers = _mesh(2, "test-death-mesh", io_timeout=3.0)
        run_started = threading.Event()

        def run_one(i, bus):
            if i == 0:
                # connect, then die abruptly: close every socket without
                # BYE — exactly what a SIGKILL'd process looks like
                run_started.wait(timeout=10.0)
                bus._call_io(_slam_shut(bus))
                return "died"
            run_started.set()
            return (
                _template()
                .engine("async", transport=bus)
                .run(iterations=ITERATIONS)
            )

        try:
            results, errors = _run_parties(transports, peers, run_one)
        finally:
            _close_all(transports)
        assert results[0] == "died"
        assert isinstance(errors[1], (PeerDisconnectedError, TransportTimeoutError))
        assert "vertex" in str(errors[1]) and "round" in str(errors[1])

    def test_stalled_mesh_times_out_with_named_error(self):
        """Party 0 connects but never runs: party 1's gathers must raise
        TransportTimeoutError after io_timeout, not wait forever."""
        transports, peers = _mesh(2, "test-stall-mesh", io_timeout=1.5)
        done = threading.Event()

        def run_one(i, bus):
            if i == 0:
                done.wait(timeout=30.0)  # stay connected, send nothing
                return "stalled"
            try:
                return (
                    _template()
                    .engine("async", transport=bus)
                    .run(iterations=ITERATIONS)
                )
            finally:
                done.set()
        try:
            results, errors = _run_parties(transports, peers, run_one)
        finally:
            _close_all(transports)
        assert results[0] == "stalled"
        assert isinstance(errors[1], TransportTimeoutError)

    def test_session_mismatch_is_a_handshake_error(self):
        listener = TcpTransport(0, 2, session="alpha")
        port = listener.listen()

        async def dial_with_wrong_session():
            return await dial_peer(
                PeerAddress(0, "127.0.0.1", port),
                my_party=1,
                session=session_id("beta"),
                num_parties=2,
                connect_timeout=5.0,
                retry_backoff=0.05,
                max_frame_bytes=1 << 20,
            )

        try:
            with pytest.raises(HandshakeError, match="session mismatch"):
                asyncio.run(dial_with_wrong_session())
        finally:
            listener.close()

    def test_unreachable_peer_is_a_connect_error(self):
        transport = TcpTransport(
            0, 2, session="nowhere", connect_timeout=0.5, retry_backoff=0.05
        )
        transport.listen()
        try:
            from repro.exceptions import PeerConnectError

            with pytest.raises(PeerConnectError, match="could not connect"):
                # a port from the dynamic range nobody is listening on
                transport.connect([PeerAddress(1, "127.0.0.1", 1)])
        finally:
            transport.close()


class TestSpecAndEnv:
    def test_tcp_is_a_known_spec(self):
        assert check_transport_spec("tcp") == "tcp"
        assert check_transport_spec("socket") == "socket"

    def test_unknown_spec_error_lists_tcp(self):
        with pytest.raises(ConfigurationError, match="tcp"):
            check_transport_spec("carrier-pigeon")

    def test_from_env_requires_the_mesh_description(self):
        with pytest.raises(ConfigurationError, match=ENV_PARTY):
            TcpTransport.from_env(env={})

    def test_from_env_rejects_malformed_peers(self):
        with pytest.raises(ConfigurationError, match="host:port"):
            TcpTransport.from_env(
                env={ENV_PARTY: "0", ENV_PEERS: "localhost;9000"}
            )

    def test_from_env_rejects_party_outside_mesh(self):
        with pytest.raises(ConfigurationError, match="outside"):
            TcpTransport.from_env(
                env={ENV_PARTY: "7", ENV_PEERS: "127.0.0.1:9000,127.0.0.1:9001"}
            )

    def test_single_execution_contract(self):
        transport = TcpTransport(0, 1, session="once")
        transport.listen()
        transport.connect([])
        try:
            _template().engine("async", transport=transport).run(
                iterations=ITERATIONS
            )
            with pytest.raises(ConfigurationError, match="one execution"):
                _template().engine("async", transport=transport).run(
                    iterations=ITERATIONS
                )
        finally:
            transport.close()


async def _slam_shut(bus):
    """Close every socket of ``bus`` with no goodbye (simulated SIGKILL)."""
    for writer in bus._all_writers:
        writer.close()
    if bus._server is not None:
        bus._server.close()
