"""Property tests for the framed wire codec (hypothesis-driven).

The codec's contract, as the satellite task states it: encode/decode
round-trips every :class:`MessageKind` exactly; truncated buffers and
garbage headers *always* raise a named
:class:`~repro.exceptions.WireFormatError` (never hang, never over-read);
oversized declarations are refused by
:class:`~repro.exceptions.FrameTooLargeError` before any payload is
touched. Over-reading is observable: :func:`decode_frame` reports the
offset it consumed, so a junk suffix must never move it.
"""

import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FrameTooLargeError, WireFormatError
from repro.net.wire import (
    DEFAULT_MAX_FRAME_BYTES,
    HEADER_BYTES,
    MAGIC,
    PROTOCOL_VERSION,
    CTRL_ABORT,
    CTRL_BYE,
    Frame,
    MessageKind,
    convey_kind,
    decode_frame,
    encode_frame,
)

_U32 = 2**32 - 1
_U16 = 2**16 - 1

# -- frame strategies, one per kind ------------------------------------------

_sessions = st.binary(min_size=16, max_size=16)
_u32 = st.integers(min_value=0, max_value=_U32)
_u16 = st.integers(min_value=0, max_value=_U16)

_values = st.one_of(
    st.none(),
    st.booleans(),
    st.floats(allow_nan=True, allow_infinity=True),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.integers(min_value=2**63, max_value=2**200),  # bigint tag
    st.integers(min_value=-(2**200), max_value=-(2**63) - 1),
    st.lists(st.floats(allow_nan=False), max_size=4),  # pickle fallback
)

_hello_frames = st.builds(
    lambda session, party, num: Frame(
        kind=MessageKind.HELLO, session=session, party_id=party, num_parties=num
    ),
    _sessions,
    _u32,
    _u32,
)
_round_frames = st.builds(
    lambda src, dst, slot, rnd, value: Frame(
        kind=MessageKind.ROUND_VALUE,
        src=src,
        dst=dst,
        in_slot=slot,
        round_index=rnd,
        value=value,
    ),
    _u32,
    _u32,
    _u16,
    _u32,
    _values,
)
_convey_frames = st.builds(
    lambda kind, src, dst, rnd, pad: Frame(
        kind=kind, src=src, dst=dst, round_index=rnd, pad_len=pad
    ),
    st.sampled_from(
        [MessageKind.GMW_BATCH, MessageKind.TRANSFER_AGG, MessageKind.CRYPTO]
    ),
    _u32,
    _u32,
    _u32,
    st.integers(min_value=0, max_value=2048),
)
_control_frames = st.builds(
    lambda code, detail: Frame(kind=MessageKind.CONTROL, code=code, detail=detail),
    st.integers(min_value=0, max_value=255),
    st.text(max_size=64),
)
_frames = st.one_of(_hello_frames, _round_frames, _convey_frames, _control_frames)


def _values_equal(sent, received) -> bool:
    """Bit-level equality: NaN must survive the wire too."""
    if type(sent) is float and type(received) is float:
        return struct.pack("!d", sent) == struct.pack("!d", received)
    return type(sent) is type(received) and sent == received


class TestRoundTrip:
    @given(frame=_frames)
    @settings(max_examples=200)
    def test_every_kind_round_trips(self, frame):
        data = encode_frame(frame)
        decoded, consumed = decode_frame(data)
        assert consumed == len(data)
        assert decoded.kind is frame.kind
        if frame.kind is MessageKind.HELLO:
            assert decoded.session == frame.session
            assert decoded.party_id == frame.party_id
            assert decoded.num_parties == frame.num_parties
        elif frame.kind is MessageKind.ROUND_VALUE:
            assert (decoded.src, decoded.dst, decoded.in_slot, decoded.round_index) == (
                frame.src,
                frame.dst,
                frame.in_slot,
                frame.round_index,
            )
            assert _values_equal(frame.value, decoded.value)
        elif frame.kind is MessageKind.CONTROL:
            assert (decoded.code, decoded.detail) == (frame.code, frame.detail)
        else:
            assert (decoded.src, decoded.dst, decoded.round_index, decoded.pad_len) == (
                frame.src,
                frame.dst,
                frame.round_index,
                frame.pad_len,
            )

    @given(frame=_frames, offset_pad=st.binary(min_size=0, max_size=32))
    @settings(max_examples=100)
    def test_decode_at_offset(self, frame, offset_pad):
        data = encode_frame(frame)
        decoded, consumed = decode_frame(offset_pad + data, offset=len(offset_pad))
        assert consumed == len(offset_pad) + len(data)
        assert decoded.kind is frame.kind

    def test_nan_float_survives_exactly(self):
        frame = Frame(kind=MessageKind.ROUND_VALUE, value=float("nan"))
        decoded, _ = decode_frame(encode_frame(frame))
        assert math.isnan(decoded.value)


class TestNeverOverRead:
    @given(frame=_frames, junk=st.binary(min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_junk_suffix_untouched(self, frame, junk):
        """The declared length bounds the read: trailing bytes (the next
        frame on a stream) are never consumed, whatever they contain."""
        data = encode_frame(frame)
        decoded, consumed = decode_frame(data + junk)
        assert consumed == len(data)
        assert decoded.kind is frame.kind


class TestTruncationAlwaysRaises:
    @given(frame=_frames, data=st.data())
    @settings(max_examples=200)
    def test_every_proper_prefix_raises(self, frame, data):
        encoded = encode_frame(frame)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(WireFormatError):
            decode_frame(encoded[:cut])

    @given(frame=_round_frames, chopped=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_understated_length_raises_not_misparses(self, frame, chopped):
        """A header whose length lies short makes the *payload* parse fail
        (truncated value), not silently produce a wrong frame."""
        encoded = bytearray(encode_frame(frame))
        (length,) = struct.unpack_from("!I", encoded, 4)
        if length < chopped:
            return
        struct.pack_into("!I", encoded, 4, length - chopped)
        with pytest.raises(WireFormatError):
            decode_frame(bytes(encoded[: len(encoded) - chopped]))


class TestGarbageHeaderAlwaysRaises:
    @given(header=st.binary(min_size=HEADER_BYTES, max_size=HEADER_BYTES + 64))
    @settings(max_examples=200)
    def test_bad_magic_or_version_raises(self, header):
        if header[:2] == MAGIC and header[2] == PROTOCOL_VERSION:
            header = b"XX" + header[2:]
        with pytest.raises(WireFormatError):
            decode_frame(header)

    @given(kind_byte=st.integers(min_value=0, max_value=255))
    def test_unknown_kind_raises(self, kind_byte):
        known = {int(k) for k in MessageKind}
        if kind_byte in known:
            return
        header = struct.pack("!2sBBI", MAGIC, PROTOCOL_VERSION, kind_byte, 0)
        with pytest.raises(WireFormatError):
            decode_frame(header)

    @given(version=st.integers(min_value=0, max_value=255))
    def test_wrong_version_raises(self, version):
        if version == PROTOCOL_VERSION:
            return
        header = struct.pack(
            "!2sBBI", MAGIC, version, int(MessageKind.CONTROL), 0
        )
        with pytest.raises(WireFormatError):
            decode_frame(header)


class TestFrameCap:
    def test_encode_refuses_oversized_padding(self):
        frame = Frame(kind=MessageKind.GMW_BATCH, pad_len=1024)
        with pytest.raises(FrameTooLargeError):
            encode_frame(frame, max_frame_bytes=256)

    def test_decode_refuses_declared_oversize_before_payload(self):
        """The cap check runs on the *declared* length: a hostile header
        is refused even though not one payload byte is present."""
        header = struct.pack(
            "!2sBBI", MAGIC, PROTOCOL_VERSION, int(MessageKind.CRYPTO), 2**31
        )
        with pytest.raises(FrameTooLargeError):
            decode_frame(header, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES)

    @given(pad=st.integers(min_value=0, max_value=512))
    @settings(max_examples=50)
    def test_cap_is_exact(self, pad):
        frame = Frame(kind=MessageKind.CRYPTO, pad_len=pad)
        payload_len = 16 + pad  # convey header + padding
        encoded = encode_frame(frame, max_frame_bytes=payload_len)
        decoded, _ = decode_frame(encoded, max_frame_bytes=payload_len)
        assert decoded.pad_len == pad
        with pytest.raises(FrameTooLargeError):
            encode_frame(frame, max_frame_bytes=payload_len - 1)


class TestConveyIntegrity:
    def test_pad_length_mismatch_raises(self):
        encoded = bytearray(
            encode_frame(Frame(kind=MessageKind.TRANSFER_AGG, pad_len=8))
        )
        # lie about the padding length inside an otherwise valid frame
        struct.pack_into("!I", encoded, HEADER_BYTES + 12, 9)
        with pytest.raises(WireFormatError):
            decode_frame(bytes(encoded))

    def test_kind_mapping(self):
        assert convey_kind("ot") is MessageKind.GMW_BATCH
        assert convey_kind("transfer") is MessageKind.TRANSFER_AGG
        assert convey_kind("anything-else") is MessageKind.CRYPTO


class TestControlCodes:
    def test_bye_and_abort_codes_are_distinct(self):
        assert CTRL_BYE != CTRL_ABORT

    def test_abort_detail_round_trips(self):
        frame = Frame(
            kind=MessageKind.CONTROL,
            code=CTRL_ABORT,
            detail="PeerDisconnectedError: party 1 died",
        )
        decoded, _ = decode_frame(encode_frame(frame))
        assert decoded.code == CTRL_ABORT
        assert "party 1 died" in decoded.detail
