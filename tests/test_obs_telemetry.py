"""The ``repro.obs`` telemetry layer: spans, metrics, exports, ledger.

The load-bearing claim is the determinism contract: wrapping any engine
in a :class:`~repro.obs.trace.TraceRecorder` must leave its released
outputs — aggregate, trajectory, noise, traffic, even the RNG stream
position — bit-identical to the untraced run. Tracing observes the
protocol; it never participates in it.
"""

import json
import math
import re
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Bank,
    FinancialNetwork,
    PrivacyAccountant,
    Scenario,
    StressTest,
)
from repro.api import Engine
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError, SensitivityError
from repro.obs import (
    BATCH_SCHEMA,
    RUN_SCHEMA,
    ManualClock,
    MetricsRegistry,
    NullRecorder,
    TraceRecorder,
    current_recorder,
    export_ledger,
    merge_shards,
    recording,
    timed_phase,
    validate_export,
    write_trace_shard,
)
from repro.obs.report import main as report_main
from repro.simulation.netsim import PhaseTimer

ITERATIONS = 2


def make_network() -> FinancialNetwork:
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


def make_test() -> StressTest:
    return (
        StressTest(make_network())
        .program("eisenberg-noe")
        .preset("demo")
        .degree_bound(2)
    )


# ------------------------------------------------------------------ clock --


class TestManualClock:
    def test_ticks_deterministically(self):
        clock = ManualClock(start=10.0, tick=0.5)
        assert clock.now() == 10.0
        assert clock.now() == 10.5
        clock.advance(2.0)
        assert clock.now() == 13.0

    def test_wall_follows_now(self):
        clock = ManualClock()
        first = clock.wall()
        assert clock.wall() > first


# ------------------------------------------------------------------ spans --


class TestTraceRecorder:
    def test_nesting_records_parentage(self):
        rec = TraceRecorder(clock=ManualClock())
        with rec.span("run", engine="x"):
            with rec.span("round", round=0):
                rec.event("checkpoint", k=1)
        run, round_ = rec.spans
        assert run.parent_id is None
        assert round_.parent_id == run.span_id
        assert round_.attrs == {"round": 0}
        assert [name for _, name, _ in round_.events] == ["checkpoint"]
        assert run.end is not None and round_.end is not None
        assert run.start < round_.start <= round_.end < run.end

    def test_event_without_span_is_zero_length_root(self):
        rec = TraceRecorder(clock=ManualClock())
        rec.event("orphan")
        (span,) = rec.spans
        assert span.start == span.end and span.parent_id is None

    def test_recording_scopes_and_restores(self):
        assert isinstance(current_recorder(), NullRecorder)
        rec = TraceRecorder()
        with recording(rec):
            assert current_recorder() is rec
        assert isinstance(current_recorder(), NullRecorder)

    def test_null_recorder_is_inert(self):
        null = current_recorder()
        with null.span("anything", x=1) as record:
            assert record is None
        null.event("nothing")


class TestTimedPhase:
    def test_fills_phase_timer_when_disabled(self):
        phases = PhaseTimer()
        with timed_phase(phases, "computation"):
            pass
        assert phases.seconds["computation"] >= 0.0

    def test_span_and_timer_agree_on_one_clock_pair(self):
        rec = TraceRecorder(clock=ManualClock(tick=1.0))
        phases = PhaseTimer()
        with recording(rec):
            with timed_phase(phases, "communication", round=3):
                pass
        (span,) = rec.spans
        assert span.name == "phase"
        assert span.attrs == {"phase": "communication", "round": 3}
        assert phases.seconds["communication"] == span.duration == 1.0

    def test_none_phases_with_recorder_still_records_span(self):
        rec = TraceRecorder(clock=ManualClock())
        with recording(rec):
            with timed_phase(None, "setup"):
                pass
        assert [s.attrs["phase"] for s in rec.spans] == ["setup"]


# ---------------------------------------------------------------- metrics --


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("gmw.pair_bits", 8, src=0, dst=1)
        reg.inc("gmw.pair_bits", 4, dst=1, src=0)  # label order is canonical
        reg.set_gauge("phase.seconds", 1.5, phase="setup")
        reg.observe("round.seconds", 2.0)
        reg.observe("round.seconds", 4.0)
        data = reg.as_dict()
        assert data["counters"] == {"gmw.pair_bits{dst=1,src=0}": 12.0}
        assert data["gauges"] == {"phase.seconds{phase=setup}": 1.5}
        assert data["histograms"]["round.seconds"] == {
            "count": 2.0,
            "sum": 6.0,
            "min": 2.0,
            "max": 4.0,
        }

    def test_merge_sums_counters_and_folds_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        a.merge(b)
        assert a.counters["c"] == 3.0
        assert a.histograms["h"] == {"count": 2.0, "sum": 4.0, "min": 1.0, "max": 3.0}


# ----------------------------------------------- trace determinism parity --


ENGINES = ["plaintext", "fixed", "sharded", "async", "naive-mpc", "secure",
           "secure-async"]


class TestTraceDeterminism:
    """Tracing must not change released outputs, traffic, or RNG stream."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_traced_run_is_bit_identical(self, engine):
        untraced = make_test().engine(engine).run(iterations=ITERATIONS)
        rec = TraceRecorder(clock=ManualClock())
        with recording(rec):
            traced = make_test().engine(engine).run(iterations=ITERATIONS)
        assert traced.aggregate == untraced.aggregate
        assert traced.trajectory == untraced.trajectory
        assert traced.noise_raw == untraced.noise_raw
        assert traced.pre_noise_aggregate == untraced.pre_noise_aggregate
        if untraced.final_states is not None:
            assert traced.final_states == untraced.final_states
        assert traced.traffic is not None and untraced.traffic is not None
        assert traced.traffic.links() == untraced.traffic.links()
        # the traced run actually produced a trace
        assert rec.spans and rec.spans[0].name == "run"
        assert rec.spans[0].attrs["engine"] == engine

    def test_every_engine_reports_phases_and_traffic(self):
        for engine in ENGINES:
            result = make_test().engine(engine).run(iterations=ITERATIONS)
            assert result.phases is not None, engine
            assert result.phases.total >= 0.0, engine
            assert result.traffic is not None, engine
            if engine == "naive-mpc":
                # centralized baseline: meter present but empty
                assert result.traffic.links() == {}
            else:
                assert result.traffic.total_bytes_sent > 0, engine

    def test_tracing_leaves_rng_stream_position_unchanged(self, monkeypatch):
        """Same number of RNG byte draws with and without the recorder —
        tracing must never consume (or reorder) seeded randomness."""
        calls = {"n": 0}
        original = DeterministicRNG.randbytes

        def counting(self, n):
            calls["n"] += 1
            return original(self, n)

        monkeypatch.setattr(DeterministicRNG, "randbytes", counting)
        make_test().engine("secure").run(iterations=ITERATIONS)
        untraced_draws = calls["n"]
        calls["n"] = 0
        with recording(TraceRecorder(clock=ManualClock())):
            make_test().engine("secure").run(iterations=ITERATIONS)
        assert calls["n"] == untraced_draws

    def test_round_spans_nest_under_run_span(self):
        rec = TraceRecorder(clock=ManualClock())
        with recording(rec):
            make_test().engine("secure").run(iterations=ITERATIONS)
        run_span = rec.spans[0]
        rounds = [s for s in rec.spans if s.name == "round"]
        # iterations computation+communication rounds plus the final step
        assert [s.attrs["round"] for s in rounds] == list(range(ITERATIONS + 1))
        assert all(s.parent_id == run_span.span_id for s in rounds)
        phases = {s.attrs["phase"] for s in rec.spans if s.name == "phase"}
        assert {"setup", "initialization", "computation", "communication",
                "aggregation"} <= phases
        # the recorder's registry absorbed the GMW pair-bit counters
        assert any(
            key.startswith("gmw.pair_bits") for key in rec.metrics.counters
        )


# ----------------------------------------------------------------- ledger --


class _CrashingReleasingEngine(Engine):
    name = "test-obs-crash-release"
    releases_output = True

    def execute(self, program, graph, iterations, config, accountant=None):
        raise ProtocolError("died before the output was noised")


class TestBudgetLedger:
    def test_charge_refund_replenish_reconcile(self):
        acct = PrivacyAccountant(epsilon_max=1.0)
        first = acct.charge(0.25, label="a", fingerprint="fp-a")
        acct.charge(0.25, label="a")
        acct.charge(0.3, label="b")
        acct.refund(first)
        recon = acct.reconcile()
        assert recon.ok, recon.issues
        assert recon.ledger_spent == acct.spent
        assert recon.outstanding == 2
        # ledger remembers the refunded charge; it names its target line
        kinds = [e.kind for e in acct.ledger]
        assert kinds == ["charge", "charge", "charge", "refund"]
        refund = acct.ledger[-1]
        assert refund.charge_seq == 0 and refund.fingerprint == "fp-a"
        acct.replenish()
        assert acct.reconcile().ok
        assert acct.reconcile().ledger_spent == 0.0

    def test_refund_unknown_charge_raises(self):
        acct = PrivacyAccountant(epsilon_max=1.0)
        charge = acct.charge(0.1, label="once")
        acct.refund(charge)
        with pytest.raises(SensitivityError):
            acct.refund(charge)

    def test_mixed_batch_ledger_sums_to_epsilon_charged(self):
        acct = PrivacyAccountant(epsilon_max=math.log(2))
        template = StressTest(make_network()).program("eisenberg-noe")
        scenarios = [
            Scenario(name="good", engine="naive-mpc", epsilon=0.2),
            Scenario(name="bad", engine=_CrashingReleasingEngine(), epsilon=0.3),
        ]
        batch = template.run_many(scenarios, workers=1, accountant=acct)
        assert batch.by_name("good").ok and not batch.by_name("bad").ok
        recon = acct.reconcile()
        assert recon.ok, recon.issues
        # the audit invariant: surviving ledger charges sum (in order) to
        # exactly what the batch reports as charged — bit-for-bit
        assert recon.ledger_spent == batch.epsilon_charged == acct.spent
        # the failed release appears as a charge AND its refund
        labels = [(e.kind, e.label) for e in acct.ledger]
        assert ("charge", "bad") in labels and ("refund", "bad") in labels
        # batch charges carry scenario fingerprints for attribution
        charged = [e for e in acct.ledger if e.kind == "charge"]
        assert all(e.fingerprint for e in charged)
        payload = batch.export(accountant=acct)
        assert payload["schema"] == BATCH_SCHEMA
        assert validate_export(payload) == []
        assert payload["ledger"]["reconciliation"]["ok"]

    def test_ledger_export_flags_tampering(self):
        acct = PrivacyAccountant(epsilon_max=1.0)
        acct.charge(0.5, label="real")
        exported = export_ledger(acct)
        assert exported["reconciliation"]["ok"]
        # simulate books drifting from the ledger
        acct.charges.pop()
        recon = acct.reconcile()
        assert not recon.ok and recon.issues


# --------------------------------------------------------- export + report --


class TestExportAndReport:
    def test_run_export_validates(self):
        rec = TraceRecorder(clock=ManualClock())
        with recording(rec):
            result = make_test().engine("async").run(iterations=ITERATIONS)
        payload = result.export(recorder=rec)
        assert payload["schema"] == RUN_SCHEMA
        assert validate_export(payload) == []
        assert payload["phases"] and payload["traffic"]["links"]
        assert payload["trace"]["spans"]
        json.dumps(payload)  # JSON-safe end to end

    def test_export_traffic_reconciles_with_meter(self):
        result = make_test().engine("async").run(iterations=ITERATIONS)
        payload = result.export()
        link_total = sum(nbytes for _, _, nbytes in payload["traffic"]["links"])
        assert link_total == result.traffic.total_bytes_sent

    def test_report_check_passes_and_renders(self, tmp_path, capsys):
        result = make_test().engine("async").run(iterations=ITERATIONS)
        path = tmp_path / "run.json"
        path.write_text(json.dumps(result.export()))
        assert report_main([str(path), "--check"]) == 0
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "async" in out and "traffic" in out.lower()

    def test_report_check_fails_on_bad_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "dstress.obs.run", "version": 1}))
        assert report_main([str(path), "--check"]) == 1


# ------------------------------------------------------------ shard merge --


class TestShardMerge:
    def test_shard_roundtrip_and_merge(self, tmp_path):
        rec = TraceRecorder(clock=ManualClock(), party=1)
        with recording(rec):
            result = make_test().engine("async").run(iterations=ITERATIONS)
        path = write_trace_shard(
            tmp_path / "party-1.jsonl", rec, traffic=result.traffic
        )
        from repro.obs.merge import load_trace_shard

        shard = load_trace_shard(path)
        assert shard["party"] == 1
        assert len(shard["spans"]) == len(rec.spans)
        timeline = merge_shards([shard])
        assert timeline["parties"] == [1]
        assert [e["round"] for e in timeline["entries"]] == list(
            range(ITERATIONS + 1)
        )
        assert validate_export(timeline) == []

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),  # party
                st.integers(min_value=0, max_value=5),  # rounds recorded
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merged_timeline_is_round_party_ordered(self, parties):
        """Entries are totally ordered within a party and round-monotonic
        across parties, whatever each party's clock origin was."""
        shards = []
        for party, rounds, origin in parties:
            clock = ManualClock(start=origin, tick=1.0)
            rec = TraceRecorder(clock=clock, party=party)
            for r in range(rounds):
                with rec.span("round", round=r):
                    pass
            shards.append(
                {
                    "party": party,
                    "meta": {},
                    "spans": [s.to_dict() for s in rec.spans],
                    "metrics": None,
                    "traffic": None,
                }
            )
        timeline = merge_shards(shards)
        keys = [(e["round"], e["party"]) for e in timeline["entries"]]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        assert validate_export(timeline) == []
        # within one party, later rounds start no earlier than prior ones
        for party, _, _ in parties:
            mine = [e for e in timeline["entries"] if e["party"] == party]
            starts = [e["start"] for e in mine]
            assert starts == sorted(starts)


# ------------------------------------------------------------------- lint --


_TIME_CALL = re.compile(r"\btime\.(?:perf_counter|time|monotonic)\s*\(")


class TestClockLintRule:
    def test_no_direct_time_calls_outside_obs_clock(self):
        """Every timing read in ``src/`` goes through ``repro.obs.clock``
        so traces and phase timers stay injectable and test-deterministic
        (benchmarks/ live outside the rule — they time the real world)."""
        src = Path(__file__).resolve().parent.parent / "src"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.name == "clock.py" and path.parent.name == "obs":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if _TIME_CALL.search(line):
                    offenders.append(f"{path.relative_to(src)}:{lineno}")
        assert offenders == []


# -------------------------------------------------- bench deltas JSON --


class TestBenchDeltasJson:
    """benchmarks/check_regression.py --json-out: the markdown tables'
    machine-readable twin (schema ``dstress.bench.deltas`` v1)."""

    def _guard(self):
        import importlib.util

        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "check_regression", root / "benchmarks" / "check_regression.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_check_writes_versioned_deltas_document(self, tmp_path):
        guard = self._guard()
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "threshold": 0.30,
                    "benchmarks": {
                        "bench_ok": {"mean": 1.0},
                        "bench_slow": {"mean": 1.0},
                        "bench_gone": {"mean": 1.0},
                    },
                    "ratios": {
                        "speedup": {
                            "fast": "bench_ok",
                            "slow": "bench_slow",
                            "min_speedup": 5.0,
                        }
                    },
                }
            )
        )
        out = tmp_path / "deltas.json"
        code = guard.check(
            {"bench_ok": 1.1, "bench_slow": 2.0},
            baseline,
            threshold=0.30,
            json_out=out,
        )
        assert code == 1  # bench_slow regressed, bench_gone missing, ratio low
        doc = json.loads(out.read_text())
        assert doc["schema"] == "dstress.bench.deltas"
        assert doc["version"] == 1
        assert doc["ok"] is False
        by_name = {row["name"]: row for row in doc["benchmarks"]}
        assert by_name["bench_ok"]["verdict"] == "ok"
        assert by_name["bench_slow"]["verdict"].startswith("FAIL")
        assert by_name["bench_gone"]["current_mean"] is None  # NaN -> null
        assert json.dumps(doc)  # strictly JSON-serializable (no NaN leaks)
        (ratio,) = doc["ratios"]
        assert ratio["measured"] == pytest.approx(2.0 / 1.1)
        assert ratio["verdict"].startswith("FAIL")
        assert len(doc["failures"]) == 3

    def test_clean_run_is_ok(self, tmp_path, capsys):
        guard = self._guard()
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps({"threshold": 0.30, "benchmarks": {"b": {"mean": 1.0}}})
        )
        out = tmp_path / "deltas.json"
        assert guard.check({"b": 1.05}, baseline, 0.30, json_out=out) == 0
        doc = json.loads(out.read_text())
        assert doc["ok"] is True and doc["failures"] == []
