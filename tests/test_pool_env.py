"""Worker-process environment hygiene.

Fork inheritance copies the parent's environment wholesale, so before
this fix a pool worker or cluster child silently saw whatever
``REPRO_*`` knobs the host process ran under (``REPRO_BENCH_SMOKE``
from a benchmark harness, ``REPRO_TCP_*`` from a cluster launcher). An
engine process must take its configuration from its payload; ambient
host env is scrubbed unless explicitly allowlisted.
"""

import os

from repro import StressTest
from repro.api.pool import iter_in_pool, map_in_pool, scrub_repro_env
from repro.finance import Bank, FinancialNetwork
from repro.net import run_scenario_cluster

MARKER = "REPRO_TEST_LEAK_CANARY"
SECOND = "REPRO_TEST_SECOND_CANARY"


def _read_env(_payload):
    return {key: os.environ.get(key) for key in (MARKER, SECOND, "HOME")}


class TestScrubFunction:
    def test_removes_only_repro_prefixed_vars(self, monkeypatch):
        monkeypatch.setenv(MARKER, "1")
        monkeypatch.setenv("UNRELATED_VAR", "stay")
        removed = scrub_repro_env()
        assert MARKER in removed
        assert MARKER not in os.environ
        assert os.environ["UNRELATED_VAR"] == "stay"

    def test_allowlist_is_honored(self, monkeypatch):
        monkeypatch.setenv(MARKER, "keep-me")
        monkeypatch.setenv(SECOND, "scrub-me")
        removed = scrub_repro_env([MARKER])
        assert SECOND in removed and MARKER not in removed
        assert os.environ[MARKER] == "keep-me"
        assert SECOND not in os.environ


class TestPoolScrubbing:
    def test_forked_workers_are_scrubbed(self, monkeypatch):
        monkeypatch.setenv(MARKER, "leaked")
        seen = map_in_pool(_read_env, [0, 1], workers=2)
        for worker_env in seen:
            assert worker_env[MARKER] is None, "REPRO_* env leaked into worker"
            assert worker_env["HOME"] is not None, "non-REPRO env must survive"

    def test_allowlisted_var_reaches_workers(self, monkeypatch):
        monkeypatch.setenv(MARKER, "allowed")
        monkeypatch.setenv(SECOND, "leaked")
        seen = map_in_pool(
            _read_env, [0, 1], workers=2, env_allowlist=[MARKER]
        )
        for worker_env in seen:
            assert worker_env[MARKER] == "allowed"
            assert worker_env[SECOND] is None

    def test_inline_path_is_never_scrubbed(self, monkeypatch):
        # workers == 1 runs in the caller's own process: scrubbing there
        # would mutate the host environment
        monkeypatch.setenv(MARKER, "mine")
        seen = map_in_pool(_read_env, [0], workers=1)
        assert seen[0][MARKER] == "mine"
        assert os.environ[MARKER] == "mine"

    def test_iter_in_pool_scrubs_too(self, monkeypatch):
        monkeypatch.setenv(MARKER, "leaked")
        results = dict(iter_in_pool(_read_env, [0, 1], workers=2))
        for worker_env in results.values():
            assert worker_env[MARKER] is None


def _canary_guard_build(party_id):
    if os.environ.get(MARKER) is not None:
        raise RuntimeError(f"host env leaked into cluster child: {MARKER}")
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_debt(0, 1, 1.5)
    return StressTest(net).program("eisenberg-noe").preset("demo")


class TestClusterScrubbing:
    def test_cluster_children_do_not_see_host_env(self, monkeypatch):
        monkeypatch.setenv(MARKER, "leaked")
        outcomes = run_scenario_cluster(
            _canary_guard_build,
            num_parties=2,
            engine="async",
            iterations=1,
            session="test-env-scrub",
            timeout=60.0,
        )
        # the builder raises inside any child that still sees the canary,
        # so two ok parties prove the scrub ran before scenario build
        assert [o.status for o in outcomes] == ["ok", "ok"]
