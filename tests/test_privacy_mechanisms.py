"""Tests for the DP mechanisms and the budget accountant."""

import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import PrivacyBudgetExceeded, SensitivityError
from repro.privacy.budget import DEFAULT_EPSILON_MAX, PrivacyAccountant
from repro.privacy.mechanisms import (
    LaplaceMechanism,
    TwoSidedGeometricMechanism,
    geometric_sample,
    laplace_mechanism,
    laplace_sample,
    laplace_tail_probability,
    two_sided_geometric_sample,
)


class TestLaplace:
    def test_mean_and_scale(self):
        rng = DeterministicRNG("lap")
        scale = 3.0
        samples = [laplace_sample(scale, rng) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        # Laplace variance is 2 b^2.
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert abs(mean) < 0.15
        assert var == pytest.approx(2 * scale**2, rel=0.1)

    def test_tail_probability_formula(self):
        rng = DeterministicRNG("tail")
        scale, threshold = 2.0, 5.0
        exceed = sum(1 for _ in range(20000) if abs(laplace_sample(scale, rng)) > threshold)
        assert exceed / 20000 == pytest.approx(
            laplace_tail_probability(scale, threshold), abs=0.02
        )

    def test_mechanism_centers_on_value(self):
        rng = DeterministicRNG("mech")
        released = [laplace_mechanism(100.0, 1.0, 0.5, rng) for _ in range(5000)]
        assert sum(released) / len(released) == pytest.approx(100.0, abs=0.5)

    def test_zero_sensitivity_is_exact(self, rng):
        assert laplace_mechanism(42.0, 0.0, 0.1, rng) == 42.0

    def test_invalid_parameters(self, rng):
        with pytest.raises(SensitivityError):
            laplace_mechanism(0.0, -1.0, 0.1, rng)
        with pytest.raises(SensitivityError):
            laplace_mechanism(0.0, 1.0, 0.0, rng)
        with pytest.raises(SensitivityError):
            laplace_sample(0.0, rng)

    def test_mechanism_object(self, rng):
        mech = LaplaceMechanism(sensitivity=2.0, epsilon=0.5)
        assert mech.scale == 4.0
        assert mech.tail_probability(0.0) == 1.0
        assert 0 < mech.tail_probability(10.0) < 1


class TestGeometric:
    def test_one_sided_distribution(self):
        rng = DeterministicRNG("geo")
        alpha = 0.6
        counts = Counter(geometric_sample(alpha, rng) for _ in range(30000))
        # P(k) = (1 - alpha) alpha^k
        for k in range(3):
            expected = (1 - alpha) * alpha**k
            assert counts[k] / 30000 == pytest.approx(expected, abs=0.01)

    def test_two_sided_symmetry(self):
        rng = DeterministicRNG("sym")
        samples = [two_sided_geometric_sample(0.7, rng) for _ in range(30000)]
        counts = Counter(samples)
        for d in (1, 2, 3):
            assert counts[d] == pytest.approx(counts[-d], rel=0.15)

    def test_dp_ratio(self):
        """The defining epsilon-DP property: neighboring outputs have
        probability ratio within e^eps."""
        rng = DeterministicRNG("ratio")
        epsilon, sensitivity = 0.5, 1
        mech = TwoSidedGeometricMechanism(sensitivity, epsilon)
        counts_a = Counter(mech.release(10, rng) for _ in range(30000))
        counts_b = Counter(mech.release(11, rng) for _ in range(30000))
        for output in range(8, 14):
            if counts_a[output] > 500 and counts_b[output] > 500:
                ratio = counts_a[output] / counts_b[output]
                assert math.exp(-epsilon) * 0.85 <= ratio <= math.exp(epsilon) * 1.15

    def test_alpha_formula(self):
        mech = TwoSidedGeometricMechanism(sensitivity=20, epsilon=2.34e-7)
        assert mech.alpha == pytest.approx(math.exp(-2.34e-7 / 20))

    def test_invalid_alpha(self, rng):
        with pytest.raises(SensitivityError):
            geometric_sample(1.5, rng)


class TestAccountant:
    def test_default_budget_is_ln2(self):
        assert PrivacyAccountant().epsilon_max == pytest.approx(math.log(2))

    def test_sequential_composition(self):
        acct = PrivacyAccountant(epsilon_max=1.0)
        acct.charge(0.3)
        acct.charge(0.3)
        assert acct.spent == pytest.approx(0.6)
        assert acct.remaining == pytest.approx(0.4)

    def test_overrun_rejected(self):
        acct = PrivacyAccountant(epsilon_max=0.5)
        acct.charge(0.4)
        with pytest.raises(PrivacyBudgetExceeded):
            acct.charge(0.2)

    def test_replenish_resets_period(self):
        acct = PrivacyAccountant(epsilon_max=0.5)
        acct.charge(0.5, "year-1 run")
        acct.replenish()
        assert acct.remaining == pytest.approx(0.5)
        acct.charge(0.5, "year-2 run")
        assert len(acct.charges) == 2

    def test_paper_queries_per_year(self):
        # §4.5: (ln 2) / 0.23 ~ 3 runs per year.
        acct = PrivacyAccountant()
        assert acct.queries_per_period(0.23) == 3

    def test_negative_charge_rejected(self):
        with pytest.raises(SensitivityError):
            PrivacyAccountant().charge(-0.1)

    @given(st.lists(st.floats(min_value=0.01, max_value=0.2), min_size=1, max_size=10))
    @settings(max_examples=scale(30))
    def test_spent_is_sum_of_charges(self, epsilons):
        acct = PrivacyAccountant(epsilon_max=10.0)
        for epsilon in epsilons:
            acct.charge(epsilon)
        assert acct.spent == pytest.approx(sum(epsilons))
