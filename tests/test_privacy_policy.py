"""Tests for dollar-DP, the §4.5 utility analysis and Appendix B accounting."""

import math

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import SensitivityError
from repro.privacy.budget import PrivacyAccountant, whole_releases
from repro.privacy.dollar import DollarPrivacySpec
from repro.privacy.edge_privacy import (
    EdgePrivacyAnalysis,
    alpha_max_for_failure_budget,
    dlog_table_entries,
    failure_probability,
    mechanism_alpha,
    per_iteration_epsilon,
    total_transfers,
    transfer_sensitivity,
)
from repro.privacy.utility import (
    UtilityAnalysis,
    epsilon_for_precision,
    measure_noise_impact,
    runs_per_year,
)


class TestDollarDP:
    def test_noise_scale(self):
        spec = DollarPrivacySpec(granularity=1e9, sensitivity=20, epsilon=0.23)
        assert spec.noise_scale_dollars == pytest.approx(1e9 * 20 / 0.23)

    def test_release_centers_on_value(self):
        rng = DeterministicRNG("dollar")
        spec = DollarPrivacySpec(granularity=1e9, sensitivity=20, epsilon=0.23)
        true_value = 500e9
        releases = [spec.release(true_value, rng) for _ in range(3000)]
        assert sum(releases) / len(releases) == pytest.approx(true_value, rel=0.02)

    def test_error_probability_95(self):
        # §4.5: eps >= 0.23 keeps noise under $200B with 95% confidence
        # (one-sided reading; the two-sided tail is ~10%).
        spec = DollarPrivacySpec(granularity=1e9, sensitivity=20, epsilon=0.2303)
        assert spec.error_probability(200e9) == pytest.approx(0.10, abs=0.005)

    def test_invalid_specs(self):
        with pytest.raises(SensitivityError):
            DollarPrivacySpec(granularity=0)
        with pytest.raises(SensitivityError):
            DollarPrivacySpec(epsilon=0)


class TestUtilityAnalysis:
    """§4.5 numbers, exactly as the paper derives them."""

    def test_egj_sensitivity_is_20(self):
        assert UtilityAnalysis().sensitivity_units == pytest.approx(20.0)

    def test_epsilon_query_is_023(self):
        assert UtilityAnalysis().epsilon_query == pytest.approx(0.2303, abs=0.0005)

    def test_three_runs_per_year(self):
        assert UtilityAnalysis().runs_per_year == 3

    def test_two_sided_variant_is_stricter(self):
        one_sided = epsilon_for_precision(20, 200, 0.95, two_sided=False)
        two_sided = epsilon_for_precision(20, 200, 0.95, two_sided=True)
        assert two_sided > one_sided

    def test_runs_per_year_floor(self):
        assert runs_per_year(0.23) == 3
        assert runs_per_year(math.log(2)) == 1
        assert runs_per_year(0.7) == 0

    def test_invalid_parameters(self):
        with pytest.raises(SensitivityError):
            epsilon_for_precision(0, 200)
        with pytest.raises(SensitivityError):
            epsilon_for_precision(20, 0)
        with pytest.raises(SensitivityError):
            epsilon_for_precision(20, 200, confidence=1.0)

    def test_noise_impact_experiment(self):
        rng = DeterministicRNG("utility")
        stats = measure_noise_impact(500e9, UtilityAnalysis().spec(), rng, trials=500)
        # The Appendix's utility claim: typical error well under the $200B
        # requirement, tiny relative to a $500B TDS.
        assert stats["p95_abs_error"] < 300e9
        assert stats["median_abs_error"] < 100e9
        assert stats["relative_p95_error"] < 0.6


class TestQueriesPerPeriod:
    """Regression: float-division dust must not swallow a whole release."""

    def test_exact_multiple_is_not_truncated(self):
        # 0.6/0.2 == 2.999...96 in binary floats; truncation said 2
        assert PrivacyAccountant(epsilon_max=0.6).queries_per_period(0.2) == 3
        assert PrivacyAccountant(epsilon_max=0.9).queries_per_period(0.3) == 3
        assert whole_releases(0.7, 0.1) == 7

    def test_paper_ln2_over_023_is_three(self):
        # the §4.5 computation the accountant exists to answer
        assert PrivacyAccountant().queries_per_period(0.23) == 3
        assert PrivacyAccountant().queries_per_period(math.log(2)) == 1

    def test_genuinely_partial_quotients_still_floor(self):
        assert PrivacyAccountant(epsilon_max=0.5).queries_per_period(0.2) == 2
        assert PrivacyAccountant().queries_per_period(0.7) == 0

    def test_reported_count_is_always_chargeable(self):
        # a budget genuinely short of N queries must answer N-1: the
        # slack forgives division dust (~1e-16), not real deficits whose
        # last charge would raise — including epsilon_max > 1, where a
        # relative tolerance would out-scale can_afford's absolute one
        for epsilon_max, per_query, expected in (
            (0.6 - 1e-10, 0.2, 2),
            (10 - 2e-12, 2.0, 4),
            (0.6, 0.2, 3),
        ):
            accountant = PrivacyAccountant(epsilon_max=epsilon_max)
            count = accountant.queries_per_period(per_query)
            assert count == expected
            for _ in range(count):
                accountant.charge(per_query)  # every reported release fits

    def test_large_schedules_account_for_summation_drift(self):
        # a million 1e-6 charges accumulate ~8e-12 of left-to-right
        # rounding in `spent` — past can_afford's 1e-12 slack — so the
        # exact-quotient million must NOT be reported (its last charge
        # would be refused); the drift headroom keeps the answer honest
        assert whole_releases(1.0, 1e-6) == 999_999
        # the walk-down is a binary search: a pathologically tiny query
        # epsilon answers immediately instead of decrementing 1e12 times
        huge = whole_releases(1.0, 1e-12)
        assert 0 < huge <= 10**12

    def test_whole_releases_validates_epsilon_max(self):
        with pytest.raises(SensitivityError):
            whole_releases(-1.0, 0.2)
        assert whole_releases(0.0, 0.2) == 0  # an empty budget: no releases

    def test_runs_per_year_shares_the_fix(self):
        assert runs_per_year(0.2, epsilon_max=0.6) == 3

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(SensitivityError):
            PrivacyAccountant().queries_per_period(0.0)
        with pytest.raises(SensitivityError):
            whole_releases(0.6, -0.1)


class TestEdgePrivacy:
    """Appendix B accounting, including the concrete example."""

    def test_sensitivity_is_block_size(self):
        assert transfer_sensitivity(19) == 20
        with pytest.raises(SensitivityError):
            transfer_sensitivity(0)

    def test_mechanism_alpha(self):
        # alpha_mech = alpha^{2/Delta} = exp(-2 eps / Delta)
        assert mechanism_alpha(0.1, 20) == pytest.approx(math.exp(-0.01))

    def test_failure_probability_monotone_in_alpha(self):
        entries = 10000
        probs = [failure_probability(a, entries) for a in (0.99, 0.999, 0.9999)]
        assert probs == sorted(probs)

    def test_failure_probability_clamped(self):
        assert 0.0 <= failure_probability(0.5, 100) <= 1.0
        assert failure_probability(1e-9, 1000) == 0.0

    def test_alpha_max_solves_inequality(self):
        entries = 1_000_000
        budget = 1e-9
        alpha = alpha_max_for_failure_budget(entries, budget)
        assert failure_probability(alpha, entries) <= budget
        # Slightly larger alpha must violate the budget (tight solution).
        assert failure_probability(min(1 - 1e-15, alpha * 1.001), entries) > budget or alpha > 0.999

    def test_total_transfers_formula(self):
        # N_q = Y R I N D L (k+1)^2 ~ 370 billion for the paper's numbers.
        nq = total_transfers(10, 3, 11, 1750, 100, 16, 19)
        assert nq == 10 * 3 * 11 * 1750 * 100 * 16 * 400
        assert nq == pytest.approx(370e9, rel=0.01)

    def test_per_iteration_budget(self):
        # k (k+1) L eps = 0.0014 for the concrete example.
        assert per_iteration_epsilon(19, 16, 2.34e-7) == pytest.approx(0.00142, abs=5e-5)

    def test_concrete_example_end_to_end(self):
        analysis = EdgePrivacyAnalysis()
        assert analysis.sensitivity == 20
        assert analysis.transfers == pytest.approx(369.6e9, rel=0.001)
        assert analysis.epsilon_per_iteration == pytest.approx(0.0014, abs=1e-4)
        assert analysis.epsilon_per_year == pytest.approx(0.0469, abs=5e-4)
        assert analysis.meets_failure_budget

    def test_dlog_table_sizing(self):
        # 8 GiB of 384-bit entries.
        entries = dlog_table_entries(8 * 2**30, 384)
        assert entries == pytest.approx(179e6, rel=0.01)
        # The paper quotes ~230M entries (300 effective bits per entry).
        assert dlog_table_entries(8 * 2**30, 300) == pytest.approx(229e6, rel=0.01)
