"""End-to-end property-based tests across random networks and programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.core.config import DStressConfig
from repro.core.engine import PlaintextEngine
from repro.core.secure_engine import SecureEngine
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.finance import (
    Bank,
    EisenbergNoeProgram,
    ElliottGolubJacksonProgram,
    FinancialNetwork,
    clearing_vector,
    egj_fixpoint,
)
from repro.graphgen import RandomNetworkParams, random_network
from repro.mpc.fixedpoint import FixedPointFormat

FMT = FixedPointFormat(16, 8)


def _random_net(seed: int, num_banks: int) -> FinancialNetwork:
    return random_network(
        RandomNetworkParams(
            num_banks=num_banks, mean_degree=1.5, degree_cap=2, assets=8.0
        ),
        DeterministicRNG(seed),
    )


class TestEngineAgreementProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=scale(8), deadline=None)
    def test_en_float_engine_matches_solver(self, seed):
        network = _random_net(seed, 8)
        graph = network.to_en_graph(2)
        run = PlaintextEngine(EisenbergNoeProgram(FMT)).run_float(graph, iterations=16)
        exact = clearing_vector(network).total_shortfall
        assert run.aggregate == pytest.approx(exact, abs=1e-6)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=scale(8), deadline=None)
    def test_egj_float_engine_matches_solver(self, seed):
        network = _random_net(seed, 8)
        graph = network.to_egj_graph(2)
        run = PlaintextEngine(ElliottGolubJacksonProgram(FMT)).run_float(
            graph, iterations=6
        )
        exact = egj_fixpoint(network, iterations=6).total_shortfall
        assert run.aggregate == pytest.approx(exact, abs=1e-6)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=scale(6), deadline=None)
    def test_fixed_engine_quantization_bounded(self, seed):
        """Quantization error of the circuit engine is bounded by the
        per-step resolution times a modest constant."""
        network = _random_net(seed, 6)
        graph = network.to_en_graph(2)
        engine = PlaintextEngine(EisenbergNoeProgram(FMT))
        float_run = engine.run_float(graph, iterations=4)
        fixed_run = engine.run_fixed(graph, iterations=4)
        assert fixed_run.aggregate == pytest.approx(float_run.aggregate, abs=0.5)


class TestSecureEngineProperty:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=scale(3), deadline=None)
    def test_secure_matches_oracle_random_networks(self, seed):
        """The headline invariant on arbitrary small networks: the full
        protocol stack reproduces the clear circuit evaluation exactly."""
        network = _random_net(seed, 5)
        graph = network.to_en_graph(2)
        program = EisenbergNoeProgram(FMT)
        config = DStressConfig(
            collusion_bound=2,
            fmt=FMT,
            group=TOY_GROUP_64,
            dlog_half_width=300,
            edge_noise_alpha=0.4,
            output_epsilon=0.5,
            seed=seed,
        )
        result = SecureEngine(program, config).run(graph, iterations=2)
        oracle = PlaintextEngine(program).run_fixed(graph, iterations=2)
        assert result.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)


class TestEconomicInvariants:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=scale(15), deadline=None)
    def test_en_shortfall_monotone_in_shock(self, severity_a, severity_b):
        """More severe shocks never reduce the total dollar shortfall."""
        from repro.finance import apply_shock, uniform_shock

        network = _random_net(99, 10)
        lo, hi = sorted((severity_a, severity_b))
        tds_lo = clearing_vector(
            apply_shock(network, uniform_shock([0, 1], lo))
        ).total_shortfall
        tds_hi = clearing_vector(
            apply_shock(network, uniform_shock([0, 1], hi))
        ).total_shortfall
        assert tds_hi >= tds_lo - 1e-9

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=scale(10), deadline=None)
    def test_egj_shortfall_monotone_in_iterations(self, iterations):
        """EGJ values fall monotonically, so the reported shortfall can
        only grow with more iterations ([39])."""
        from repro.finance import apply_shock, uniform_shock

        network = apply_shock(_random_net(7, 8), uniform_shock([0], 0.9))
        shorter = egj_fixpoint(network, iterations).total_shortfall
        longer = egj_fixpoint(network, iterations + 1).total_shortfall
        assert longer >= shorter - 1e-9

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=scale(10), deadline=None)
    def test_tds_bounded_by_total_obligations(self, seed):
        network = _random_net(seed, 10)
        total_debt = sum(d.amount for d in network.debts)
        assert clearing_vector(network).total_shortfall <= total_debt + 1e-9
