"""Property-based tests for the fixed-point layer (hypothesis).

The MPC circuits trust :class:`FixedPointFormat` as their bit-exact
plaintext mirror, so its algebra gets property coverage rather than a few
hand-picked points: encode/decode round-trips within half an LSB,
clamping at the range edges, exact addition homomorphism inside the
representable range, and multiplication within the declared truncation
bound of one LSB. Runs under any installed hypothesis; environments
without it skip this module (the example-based tests in
``test_mpc_fixedpoint.py`` still run).
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from conftest import scale

from repro.mpc.fixedpoint import FixedPointFormat

#: Representative formats: the default, the paper's narrow 12-bit regime,
#: a wide one, and a tiny one that stresses the range edges.
FORMATS = (
    FixedPointFormat(16, 8),
    FixedPointFormat(12, 6),
    FixedPointFormat(24, 12),
    FixedPointFormat(6, 2),
)

formats = st.sampled_from(FORMATS)


def raws(fmt: FixedPointFormat) -> st.SearchStrategy:
    return st.integers(min_value=fmt.min_raw, max_value=fmt.max_raw)


def reals(fmt: FixedPointFormat) -> st.SearchStrategy:
    return st.floats(
        min_value=fmt.min_value,
        max_value=fmt.max_value,
        allow_nan=False,
        allow_infinity=False,
    )


# ----------------------------------------------------------- encode/decode --


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_encode_decode_round_trip_within_half_lsb(fmt, data):
    value = data.draw(reals(fmt))
    raw = fmt.encode(value)
    assert fmt.min_raw <= raw <= fmt.max_raw
    assert abs(fmt.decode(raw) - value) <= fmt.resolution / 2 + 1e-12


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_decode_encode_is_identity_on_the_raw_grid(fmt, data):
    raw = data.draw(raws(fmt))
    assert fmt.encode(fmt.decode(raw)) == raw


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_out_of_range_values_clamp_to_the_edges(fmt, data):
    overshoot = data.draw(st.floats(min_value=fmt.resolution, max_value=1e6))
    assert fmt.encode(fmt.max_value + overshoot) == fmt.max_raw
    assert fmt.encode(fmt.min_value - overshoot) == fmt.min_raw


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_twos_complement_round_trip(fmt, data):
    raw = data.draw(raws(fmt))
    pattern = fmt.to_unsigned(raw)
    assert 0 <= pattern < (1 << fmt.total_bits)
    assert fmt.from_unsigned(pattern) == raw
    assert fmt.wrap(raw) == raw  # in-range values wrap to themselves


# ------------------------------------------------------------- homomorphism --


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_addition_homomorphism_inside_the_range(fmt, data):
    a = data.draw(raws(fmt))
    b = data.draw(raws(fmt))
    total = a + b
    if fmt.min_raw <= total <= fmt.max_raw:
        # raw addition is exact: decode distributes over it
        assert fmt.wrap(total) == total
        assert fmt.decode(total) == fmt.decode(a) + fmt.decode(b)
    else:
        # outside the range the hardware wraps modulo 2**L, by definition
        assert fmt.wrap(total) == fmt.from_unsigned(fmt.to_unsigned(total))


@settings(max_examples=scale(300), deadline=None)
@given(fmt=formats, data=st.data())
def test_multiplication_homomorphism_within_one_lsb(fmt, data):
    a = data.draw(raws(fmt))
    b = data.draw(raws(fmt))
    exact_raw_product = (a * b) >> fmt.fraction_bits  # floor, like the circuit
    if not (fmt.min_raw <= exact_raw_product <= fmt.max_raw):
        return  # overflow wraps; the product is out of contract
    product = fmt.fx_mul(a, b)
    real_product = fmt.decode(a) * fmt.decode(b)
    # truncation floors: at most one LSB below the real product, never above
    assert product == exact_raw_product
    error = fmt.decode(product) - real_product
    assert -fmt.resolution < error <= 1e-12


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_multiplicative_identity_and_zero(fmt, data):
    a = data.draw(raws(fmt))
    one = fmt.encode(1.0)
    if fmt.fraction_bits > 0 and one == fmt.max_raw:
        return  # 1.0 saturates in this format; identity is out of range
    assert fmt.fx_mul(a, one) == a
    assert fmt.fx_mul(a, 0) == 0


@settings(max_examples=scale(200), deadline=None)
@given(fmt=formats, data=st.data())
def test_division_inverts_multiplication_within_precision(fmt, data):
    a = data.draw(raws(fmt))
    b = data.draw(raws(fmt).filter(lambda raw: raw != 0))
    quotient = fmt.fx_div(a, b)
    rebuilt = (abs(quotient) * abs(b)) >> fmt.fraction_bits
    if not (0 <= (abs(a) << fmt.fraction_bits) // abs(b) <= fmt.max_raw):
        return  # quotient overflowed and wrapped; out of contract
    # |q * b| recovers |a| to within one quotient LSB worth of b
    assert abs(rebuilt - abs(a)) <= (abs(b) >> fmt.fraction_bits) + 1
