"""The secure-async engine: the full protocol scheduled over a transport.

The contract under test, in order of importance:

* **released bit-identity** — ``engine="secure-async"`` must release
  exactly what ``engine="secure"`` releases under the same seed, on every
  bus, at every concurrency, in both schedules: scheduling overlaps only
  wire time, and wire time never touches a payload (the deep matrix
  lives in ``test_engine_parity_matrix.py``; this file covers the
  option/transport axes on one small network);
* **per-link OT attribution** — the TrafficMeter now sees GMW
  OT-extension bytes on directed links between block members, summing to
  the per-node totals the sequential engine always reported;
* **fault semantics** — a dropped or duplicated OT delivery on a
  :class:`FaultInjectingTransport` raises a scenario-nameable
  :class:`TransportError` at the step barrier instead of hanging the run.
"""

import pytest

from repro import StressTest
from repro.api.registry import get_engine
from repro.core.transport import FaultInjectingTransport, SimulatedWanTransport
from repro.exceptions import ConfigurationError, TransportError
from repro.finance import Bank, FinancialNetwork
from repro.simulation.netsim import project_wan_seconds

ITERATIONS = 2


@pytest.fixture(scope="module")
def network() -> FinancialNetwork:
    """4-bank chain with a cascading default (bank 0 under-reserved)."""
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


def _template(network):
    return StressTest(network).program("eisenberg-noe").preset("demo").degree_bound(2)


@pytest.fixture(scope="module")
def secure_reference(network):
    return _template(network).engine("secure").run(iterations=ITERATIONS)


def _assert_released_identical(result, reference):
    assert result.aggregate == reference.aggregate
    assert result.pre_noise_aggregate == reference.pre_noise_aggregate
    assert result.noise_raw == reference.noise_raw
    assert result.trajectory == reference.trajectory


class TestReleasedBitIdentity:
    @pytest.mark.parametrize("options", [
        {"tasks": 1},
        {"tasks": 4},
        {"overlap": False},
        {"tasks": 4, "transport": "wan"},
    ])
    def test_matches_secure_engine(self, network, secure_reference, options):
        result = (
            _template(network)
            .engine("secure-async", **options)
            .run(iterations=ITERATIONS)
        )
        _assert_released_identical(result, secure_reference)

    def test_node_traffic_totals_match_sequential_engine(
        self, network, secure_reference
    ):
        """Per-link attribution re-buckets bytes; it must not invent any."""
        result = (
            _template(network).engine("secure-async", tasks=4).run(iterations=ITERATIONS)
        )
        ref = secure_reference.traffic
        got = result.traffic
        assert set(got.node_ids) == set(ref.node_ids)
        for node in ref.node_ids:
            assert got.node(node).bytes_sent == pytest.approx(ref.node(node).bytes_sent)
            assert got.node(node).bytes_received == pytest.approx(
                ref.node(node).bytes_received
            )


class TestOTLinkAttribution:
    def test_ot_extension_bytes_land_on_member_links(self, secure_reference):
        """GMW traffic is quadratic in the block; graph edges alone cannot
        carry it, so per-link coverage must exceed the edge set."""
        meter = secure_reference.traffic
        links = meter.links()
        graph_edges = {(0, 1), (0, 2), (1, 3), (2, 3)}
        non_edge_links = {pair for pair in links if pair not in graph_edges}
        assert non_edge_links, "OT-extension bytes should appear on block-member links"
        # and the attribution is consistent: links sum to node sent totals
        for node in meter.node_ids:
            from_node = sum(b for (src, _), b in links.items() if src == node)
            assert from_node == pytest.approx(meter.node(node).bytes_sent)

    def test_wan_projection_feeds_on_metered_ot_bytes(self, secure_reference):
        projection = project_wan_seconds(
            secure_reference.traffic, latency_seconds=0.010, bandwidth_bytes=1e6
        )
        assert projection.num_links == secure_reference.traffic.num_links
        assert projection.total_bytes == pytest.approx(
            secure_reference.traffic.total_bytes_sent
        )
        # overlap can only help: per-node egress serialization + one
        # latency is never slower than the straight-line schedule
        assert projection.overlapped_seconds <= projection.sequential_seconds
        assert projection.overlap_speedup > 1.0


class TestWanScheduling:
    def test_wan_extras_report_link_time_and_bytes(self, network, secure_reference):
        bus = SimulatedWanTransport(
            latency_seconds=0.001, jitter=0.25, seed=7, realtime=False
        )
        result = (
            _template(network)
            .engine("secure-async", tasks=4, transport=bus)
            .run(iterations=ITERATIONS)
        )
        _assert_released_identical(result, secure_reference)
        assert result.extras["simulated_seconds"] > 0.0
        assert result.extras["wan_bytes"] > 0.0
        # the bus carried (at least) every byte the protocol meter saw in
        # the round loop; setup/init/aggregation stay off the bus
        assert result.extras["wan_bytes"] <= result.traffic.total_bytes_sent

    def test_sequential_schedule_reports_width_one(self, network):
        result = (
            _template(network)
            .engine("secure-async", tasks=8, overlap=False)
            .run(iterations=1)
        )
        assert result.extras["tasks"] == 1.0
        assert result.extras["overlap"] == 0.0


class TestFaultInjection:
    def _all_pairs(self, round_index):
        ids = range(4)
        return [(a, b, round_index) for a in ids for b in ids if a != b]

    def test_dropped_ot_delivery_raises_instead_of_hanging(self, network):
        bus = FaultInjectingTransport(drop=self._all_pairs(0))
        session = _template(network).engine("secure-async", tasks=4, transport=bus)
        with pytest.raises(TransportError, match=r"round 0: ot delivery .* was dropped"):
            session.run(iterations=ITERATIONS)

    def test_duplicated_ot_delivery_raises_instead_of_hanging(self, network):
        bus = FaultInjectingTransport(duplicate=self._all_pairs(1))
        session = _template(network).engine("secure-async", tasks=4, transport=bus)
        with pytest.raises(TransportError, match=r"round 1: duplicate ot delivery"):
            session.run(iterations=ITERATIONS)

    def test_sequential_schedule_faults_identically(self, network):
        bus = FaultInjectingTransport(drop=self._all_pairs(0))
        session = _template(network).engine(
            "secure-async", overlap=False, transport=bus
        )
        with pytest.raises(TransportError, match=r"round 0: ot delivery .* was dropped"):
            session.run(iterations=1)

    def test_chaos_batch_outcome_names_the_scenario(self, network):
        """Through the batch layer the fault surfaces as a scenario-named
        error string, exactly like every other worker failure."""
        from repro.api import Scenario

        bus = FaultInjectingTransport(drop=self._all_pairs(0))
        template = _template(network).engine("secure-async", tasks=2, transport=bus)
        batch = template.run_many(
            [Scenario(name="chaos-ot-drop", iterations=1)], workers=1
        )
        outcome = batch.by_name("chaos-ot-drop")
        assert not outcome.ok
        assert "chaos-ot-drop" in outcome.error
        assert "dropped" in outcome.error


class TestEngineWiring:
    def test_registry_options_flow_through(self):
        engine = get_engine("secure-async", tasks=8, transport="wan")
        assert engine.tasks == 8
        assert engine.intra_run_width == 8
        assert get_engine("secure-async", overlap=False).intra_run_width == 1

    def test_aliases_resolve(self):
        assert get_engine("secure-asyncio").name == "secure-async"
        assert get_engine("dstress-async").name == "secure-async"

    def test_bad_options_fail_loudly(self):
        with pytest.raises(ConfigurationError, match="intra-run width"):
            get_engine("secure-async", tasks=0)
        with pytest.raises(ConfigurationError, match="transport"):
            get_engine("secure-async", transport=42)

    def test_releases_output_charges_budget(self, network):
        from repro.privacy.budget import PrivacyAccountant

        accountant = PrivacyAccountant(epsilon_max=1.0)
        (
            _template(network)
            .engine("secure-async")
            .privacy(accountant=accountant)
            .run(iterations=1)
        )
        assert accountant.spent == pytest.approx(0.5)
