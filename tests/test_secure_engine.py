"""Integration tests: the full DStress stack against the plaintext oracle.

These run the complete protocol — TP setup, share initialization, GMW
computation steps, ElGamal transfer communication steps, MPC aggregation
and noising — on small networks, and check:

* correctness: the pre-noise output equals the clear fixed-point engine's
  output bit for bit;
* privacy structure: noise is actually applied, budgets are enforced,
  transcript shapes don't depend on secrets.
"""

import math

import pytest

from repro.core.config import DStressConfig
from repro.core.engine import PlaintextEngine
from repro.core.secure_engine import SecureEngine
from repro.crypto.group import TOY_GROUP_64
from repro.exceptions import ConfigurationError, PrivacyBudgetExceeded
from repro.finance import EisenbergNoeProgram, ElliottGolubJacksonProgram
from repro.mpc.fixedpoint import FixedPointFormat
from repro.privacy.budget import PrivacyAccountant


def make_config(**overrides):
    defaults = dict(
        collusion_bound=2,
        fmt=FixedPointFormat(16, 8),
        group=TOY_GROUP_64,
        dlog_half_width=300,
        edge_noise_alpha=0.4,
        output_epsilon=0.5,
        seed=7,
    )
    defaults.update(overrides)
    return DStressConfig(**defaults)


@pytest.fixture(scope="module")
def en_run(request):
    """One shared EN secure run (expensive: full MPC per vertex step)."""
    from repro.finance import Bank, FinancialNetwork

    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)

    fmt = FixedPointFormat(16, 8)
    program = EisenbergNoeProgram(fmt)
    graph = net.to_en_graph(degree_bound=2)
    config = make_config()
    result = SecureEngine(program, config).run(graph, iterations=4)
    oracle = PlaintextEngine(program).run_fixed(graph, iterations=4)
    return result, oracle, graph, config


class TestCorrectness:
    def test_pre_noise_output_matches_oracle(self, en_run):
        result, oracle, _, _ = en_run
        assert result.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)

    def test_noisy_output_is_pre_noise_plus_noise(self, en_run):
        result, _, _, _ = en_run
        fmt = FixedPointFormat(16, 8)
        assert result.noisy_output == pytest.approx(
            result.pre_noise_output + result.noise_raw * fmt.resolution, abs=1e-12
        )

    def test_egj_secure_matches_oracle(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        config = make_config()
        result = SecureEngine(program, config).run(graph, iterations=3)
        oracle = PlaintextEngine(program).run_fixed(graph, iterations=3)
        assert result.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)

    def test_transfer_count_is_edges_times_iterations(self, en_run):
        result, _, graph, _ = en_run
        assert result.transfer_count == graph.num_edges * result.iterations

    def test_deterministic_given_seed(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        a = SecureEngine(program, make_config(seed=3)).run(graph, iterations=2)
        b = SecureEngine(program, make_config(seed=3)).run(graph, iterations=2)
        assert a.noisy_output == b.noisy_output

    def test_different_seeds_different_noise(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        a = SecureEngine(program, make_config(seed=1)).run(graph, iterations=2)
        b = SecureEngine(program, make_config(seed=2)).run(graph, iterations=2)
        assert a.pre_noise_output == b.pre_noise_output
        assert a.noise_raw != b.noise_raw


class TestPrivacyStructure:
    def test_noise_scale_plausible(self, en_run):
        """The output noise follows the configured geometric scale."""
        result, _, _, config = en_run
        sensitivity = EisenbergNoeProgram(config.fmt).sensitivity
        scale_lsb = sensitivity / (config.output_epsilon * config.fmt.resolution)
        # 10 scale-lengths is a ~e^-10 tail event.
        assert abs(result.noise_raw) < 10 * scale_lsb

    def test_budget_charged(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        accountant = PrivacyAccountant(epsilon_max=1.0)
        SecureEngine(program, make_config()).run(graph, iterations=1, accountant=accountant)
        assert accountant.spent == pytest.approx(0.5)

    def test_budget_exhaustion_blocks_run(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        accountant = PrivacyAccountant(epsilon_max=0.6)
        engine = SecureEngine(program, make_config())
        engine.run(graph, iterations=1, accountant=accountant)
        with pytest.raises(PrivacyBudgetExceeded):
            engine.run(graph, iterations=1, accountant=accountant)

    def test_edge_epsilon_reported(self, en_run):
        result, _, _, config = en_run
        delta = config.collusion_bound + 1
        eps_transfer = -math.log(config.edge_noise_alpha) * delta / 2
        expected = config.collusion_bound * delta * config.fmt.total_bits * eps_transfer
        assert result.edge_epsilon_per_iteration == pytest.approx(expected)

    def test_traffic_metered_for_all_nodes(self, en_run):
        result, _, graph, _ = en_run
        assert set(result.traffic.node_ids) == set(graph.vertex_ids)
        for node in graph.vertex_ids:
            assert result.traffic.node(node).bytes_sent > 0

    def test_phases_recorded(self, en_run):
        result, _, _, _ = en_run
        for phase in ("setup", "initialization", "computation", "communication", "aggregation"):
            assert phase in result.phases.seconds


class TestConfiguration:
    def test_format_mismatch_rejected(self):
        program = EisenbergNoeProgram(FixedPointFormat(16, 8))
        config = make_config(fmt=FixedPointFormat(12, 6))
        with pytest.raises(ConfigurationError):
            SecureEngine(program, config)

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            make_config(collusion_bound=0)
        with pytest.raises(ConfigurationError):
            make_config(output_epsilon=0)
        with pytest.raises(ConfigurationError):
            make_config(edge_noise_alpha=1.0)
        with pytest.raises(ConfigurationError):
            make_config(dlog_half_width=1)

    def test_noise_alpha_for(self):
        config = make_config()
        alpha = config.noise_alpha_for(10.0)
        assert alpha == pytest.approx(math.exp(-0.5 * (1 / 256) / 10.0))
        with pytest.raises(ConfigurationError):
            config.noise_alpha_for(0.0)

    def test_magnitude_bits_cover_scale(self):
        config = make_config()
        bits = config.noise_magnitude_bits_for(10.0)
        scale_lsb = 10.0 / (0.5 / 256)
        assert (1 << bits) >= 8 * scale_lsb


class TestBeaverMode:
    def test_beaver_backend_matches(self, small_egj_network):
        fmt = FixedPointFormat(16, 8)
        program = ElliottGolubJacksonProgram(fmt)
        graph = small_egj_network.to_egj_graph(degree_bound=2)
        ot_run = SecureEngine(program, make_config(seed=9)).run(graph, iterations=2)
        beaver_run = SecureEngine(program, make_config(seed=9, gmw_mode="beaver")).run(
            graph, iterations=2
        )
        assert ot_run.pre_noise_output == beaver_run.pre_noise_output


class TestHierarchicalAggregation:
    def test_tree_used_when_fanout_exceeded(self, small_en_network):
        fmt = FixedPointFormat(16, 8)
        program = EisenbergNoeProgram(fmt)
        graph = small_en_network.to_en_graph(degree_bound=2)
        flat = SecureEngine(program, make_config(aggregation_fanout=100)).run(
            graph, iterations=1
        )
        tree = SecureEngine(program, make_config(aggregation_fanout=2)).run(
            graph, iterations=1
        )
        assert flat.aggregation_levels == 1
        assert tree.aggregation_levels == 2
        assert flat.pre_noise_output == tree.pre_noise_output


class TestPaddedTransfers:
    def test_padding_hides_degree_in_transfer_count(self, small_en_network):
        """With pad_transfers every vertex runs D transfers per iteration
        regardless of its degree."""
        fmt = FixedPointFormat(16, 8)
        program = EisenbergNoeProgram(fmt)
        graph = small_en_network.to_en_graph(degree_bound=3)  # degrees < 3
        result = SecureEngine(program, make_config(pad_transfers=True)).run(
            graph, iterations=1
        )
        assert result.transfer_count == graph.num_vertices * 3
        oracle = PlaintextEngine(program).run_fixed(graph, iterations=1)
        assert result.pre_noise_output == pytest.approx(oracle.aggregate, abs=1e-12)
