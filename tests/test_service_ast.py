"""The scenario AST: whitelist validation, canonical form, notarization.

The service's trust boundary is this module: only documents that pass
the whitelist are ever built, and what is built is *exactly* what a
library caller would have built by hand — same fingerprint, same bits.
"""

import copy

import pytest

from repro.api.cache import run_fingerprint
from repro.exceptions import ScenarioValidationError
from repro.service.scenario_ast import (
    AST_VERSION,
    MAX_BANKS,
    MAX_ITERATIONS,
    build_session,
    canonical_json,
    document_digest,
    notarize,
    validate_scenario,
)


def base_doc(**over):
    doc = {
        "version": AST_VERSION,
        "name": "ast-test",
        "network": {
            "generator": "core-periphery",
            "params": {"num_banks": 10, "core_size": 3},
            "seed": 7,
        },
        "shock": {"targets": [0, 1], "severity": 0.5},
        "program": "eisenberg-noe",
        "engine": {"name": "secure", "options": {"backend": "scalar"}},
        "preset": "demo",
        "epsilon": 0.23,
        "iterations": 2,
    }
    doc.update(over)
    return doc


class TestValidation:
    def test_valid_document_round_trips(self):
        validated = validate_scenario(base_doc())
        again = validate_scenario(validated.document())
        assert again.document() == validated.document()

    def test_engine_shorthand_string(self):
        validated = validate_scenario(base_doc(engine="plaintext"))
        assert validated.engine == "plaintext"
        assert validated.engine_options == {}

    def test_program_alias_resolves_to_canonical_name(self):
        a = validate_scenario(base_doc(program="eisenberg-noe"))
        b = validate_scenario(base_doc(program=a.program))
        assert a.program == b.program

    @pytest.mark.parametrize(
        "mutation",
        [
            {"version": 2},
            {"version": "1"},
            {"name": ""},
            {"name": 7},
            {"name": "x" * 300},
            {"bogus_key": 1},
            {"network": {"generator": "smallworld"}},
            {"network": {"generator": "random", "params": {"bogus": 1}}},
            {"network": {"generator": "random", "params": {"num_banks": True}}},
            {
                "network": {
                    "generator": "random",
                    "params": {"num_banks": MAX_BANKS + 1},
                }
            },
            {"network": {"generator": "core-periphery", "seed": "seven"}},
            {"shock": {"targets": [], "severity": 0.5}},
            {"shock": {"targets": [0, 0], "severity": 0.5}},
            {"shock": {"targets": [0], "severity": 1.5}},
            {"shock": {"targets": [99], "severity": 0.5}},
            {"program": 42},
            {"program": "no-such-program"},
            {"engine": {"name": "evil"}},
            {"engine": {"name": "secure", "options": {"backend": "quantum"}}},
            {"engine": {"name": "secure", "options": {"transport": "tcp"}}},
            {"engine": {"name": "sharded", "options": {"shards": 0}}},
            {"preset": "galactic"},
            {"overrides": {"fmt": "anything"}},
            {"overrides": {"output_epsilon": -1.0}},
            {"overrides": {"pad_transfers": 1}},
            {"epsilon": float("nan")},
            {"epsilon": -0.1},
            {"iterations": 0},
            {"iterations": MAX_ITERATIONS + 1},
            {"iterations": 2.5},
            {"max_iterations": 0},
            {"seed": "abc"},
            {"degree_bound": 0},
        ],
    )
    def test_rejections(self, mutation):
        doc = base_doc()
        doc.update(copy.deepcopy(mutation))
        with pytest.raises(ScenarioValidationError):
            validate_scenario(doc)

    def test_non_object_document_rejected(self):
        with pytest.raises(ScenarioValidationError):
            validate_scenario(["not", "an", "object"])

    def test_inconsistent_generator_params_rejected(self):
        # shape constraint enforced by the params dataclass itself
        doc = base_doc(
            network={
                "generator": "core-periphery",
                "params": {"num_banks": 4, "core_size": 9},
            }
        )
        with pytest.raises(ScenarioValidationError):
            validate_scenario(doc)


class TestCanonicalForm:
    def test_key_order_does_not_change_digest(self):
        doc = base_doc()
        shuffled = dict(reversed(list(doc.items())))
        assert document_digest(doc) == document_digest(shuffled)

    def test_defaults_made_explicit(self):
        # omitting a defaulted field and spelling it out canonicalize the
        # same way once validated
        a = validate_scenario(base_doc()).document()
        b = validate_scenario(base_doc(overrides={})).document()
        assert canonical_json(a) == canonical_json(b)

    def test_nan_is_not_canonical(self):
        with pytest.raises(ScenarioValidationError):
            canonical_json({"x": float("nan")})


class TestNotarization:
    def test_fingerprint_matches_hand_built_session(self):
        doc = base_doc()
        notarized = notarize(doc)
        validated = validate_scenario(doc)
        resolved = build_session(validated).resolve(
            validated.iterations, label=validated.name
        )
        assert notarized.fingerprint == run_fingerprint(resolved)

    def test_equivalent_documents_share_fingerprint(self):
        a = notarize(base_doc())
        b = notarize(dict(reversed(list(base_doc().items()))))
        assert a.fingerprint == b.fingerprint
        assert a.digest == b.digest

    def test_different_scenarios_differ(self):
        a = notarize(base_doc())
        b = notarize(base_doc(network={
            "generator": "core-periphery",
            "params": {"num_banks": 10, "core_size": 3},
            "seed": 8,
        }))
        assert a.fingerprint != b.fingerprint

    def test_releasing_engine_carries_epsilon(self):
        notarized = notarize(base_doc(epsilon=0.31))
        assert notarized.releases
        assert notarized.epsilon == pytest.approx(0.31)

    def test_plaintext_does_not_release(self):
        notarized = notarize(base_doc(engine="plaintext"))
        assert not notarized.releases
        assert notarized.epsilon == 0.0

    def test_malformed_document_never_resolves(self):
        with pytest.raises(ScenarioValidationError):
            notarize(base_doc(engine={"name": "evil"}))

    def test_notarized_run_is_bit_identical_to_direct_run(self):
        doc = base_doc()
        from repro.api.session import execute_resolved

        service_side = execute_resolved(notarize(doc).resolved)
        validated = validate_scenario(doc)
        direct = build_session(validated).run(iterations=validated.iterations)
        assert service_side.aggregate == direct.aggregate
        assert service_side.pre_noise_aggregate == direct.pre_noise_aggregate
        assert service_side.noise_raw == direct.noise_raw
        assert service_side.trajectory == direct.trajectory
