"""The networked cache tier: fleet-shared dedup, tolerant failure mode.

A fleet of service replicas in front of one tier must pay exactly one
engine run and one epsilon charge for the year's standard scenario —
and a dead tier must only ever cost recomputation, never correctness.
"""

import asyncio
import threading

import pytest

from repro import StressTest
from repro.api.batch import Scenario, _resolve_cache, run_batch
from repro.api.cache import ScenarioCache
from repro.exceptions import ConfigurationError, ServiceUnavailableError
from repro.finance import Bank, FinancialNetwork
from repro.privacy.budget import PrivacyAccountant
from repro.service import (
    CacheTierServer,
    RemoteScenarioCache,
    ServiceClient,
    StressTestService,
)
from tests.test_service_server import ServiceHarness, make_doc


class TierHarness:
    """Run one CacheTierServer on a background event-loop thread."""

    def __init__(self, backing=None):
        self.backing = backing if backing is not None else ScenarioCache()
        self.server = CacheTierServer(self.backing)
        self.port = None
        self._thread = None

    def __enter__(self):
        started = threading.Event()

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def main():
                self.port = await self.server.start()
                started.set()
                await self.server.serve_until_closed()

            loop.run_until_complete(main())
            loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        assert started.wait(10), "cache tier failed to start"
        return self

    def __exit__(self, *exc_info):
        try:
            with ServiceClient("127.0.0.1", self.port) as c:
                c.shutdown()
        except Exception:
            pass
        self._thread.join(15)
        assert not self._thread.is_alive(), "cache tier thread failed to stop"


def _network():
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=0.5))
    net.add_debt(0, 1, 2.0)
    net.add_debt(1, 2, 1.0)
    return net


def _template():
    return StressTest(_network()).program("eisenberg-noe").preset("demo")


class TestRoundTrip:
    def test_store_then_lookup_through_the_wire(self):
        direct = _template().engine("secure").run(iterations=2)
        with TierHarness() as tier:
            remote = RemoteScenarioCache("127.0.0.1", tier.port)
            assert remote.lookup("fp-1") is None
            remote.store("fp-1", direct)
            fetched = remote.lookup("fp-1")
            assert fetched is not None
            assert fetched.aggregate == direct.aggregate
            assert fetched.trajectory == direct.trajectory
            assert len(remote) == 1
            remote.clear()
            assert len(remote) == 0
            remote.close()

    def test_entries_are_isolated_copies(self):
        direct = _template().engine("secure").run(iterations=2)
        with TierHarness() as tier:
            remote = RemoteScenarioCache("127.0.0.1", tier.port)
            remote.store("fp-iso", direct)
            first = remote.lookup("fp-iso")
            first.trajectory.append(123.0)
            second = remote.lookup("fp-iso")
            assert second.trajectory == direct.trajectory
            remote.close()


class TestTolerance:
    def test_dead_tier_means_miss_not_error(self):
        remote = RemoteScenarioCache("127.0.0.1", 1)  # nothing listens here
        assert remote.lookup("fp") is None
        direct = _template().engine("secure").run(iterations=2)
        remote.store("fp", direct)  # swallowed: dedup lost, nothing broken
        assert len(remote) == 0
        remote.close()

    def test_strict_tier_raises_unavailable(self):
        remote = RemoteScenarioCache("127.0.0.1", 1, strict=True)
        with pytest.raises(ServiceUnavailableError):
            remote.lookup("fp")
        remote.close()


class TestBatchIntegration:
    def test_tcp_shorthand_resolves_to_remote_cache(self):
        cache = _resolve_cache("tcp://127.0.0.1:7117")
        assert isinstance(cache, RemoteScenarioCache)
        assert cache.endpoint == "tcp://127.0.0.1:7117"
        cache.close()

    def test_bad_tcp_shorthand_rejected(self):
        with pytest.raises(ConfigurationError):
            _resolve_cache("tcp://nowhere")

    def test_run_batch_deduplicates_through_the_tier(self):
        scenarios = [Scenario(name="s", engine="secure", iterations=2, seed=5)]
        with TierHarness() as tier:
            endpoint = f"tcp://127.0.0.1:{tier.port}"
            first = run_batch(_template(), scenarios, cache=endpoint)
            second = run_batch(_template(), scenarios, cache=endpoint)
        assert first.outcomes[0].ok and second.outcomes[0].ok
        assert not first.outcomes[0].cached
        assert second.outcomes[0].cached
        assert (
            second.outcomes[0].result.aggregate == first.outcomes[0].result.aggregate
        )


class TestFleet:
    def test_two_replicas_share_one_release(self):
        acct = PrivacyAccountant()
        doc = make_doc(name="fleet-scenario")
        with TierHarness() as tier:
            with ServiceHarness(
                accountant=acct,
                cache=RemoteScenarioCache("127.0.0.1", tier.port),
            ) as replica_a, ServiceHarness(
                accountant=acct,
                cache=RemoteScenarioCache("127.0.0.1", tier.port),
            ) as replica_b:
                with replica_a.client() as c:
                    first = c.submit(doc).raise_for_status()
                with replica_b.client() as c:
                    second = c.submit(doc).raise_for_status()
                assert not first.cached and second.cached
                assert first.result == second.result
                assert replica_a.service.counters["engine_runs"] == 1
                assert replica_b.service.counters["engine_runs"] == 0
        assert acct.spent == pytest.approx(0.23), "the fleet charged once"
        assert acct.reconcile().ok
