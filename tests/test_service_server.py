"""The stress-test service: admission, single-flight, typed refusals.

The ISSUE's acceptance path run as tests: N concurrent clients
submitting the same notarized scenario produce exactly one engine run,
one epsilon charge, and N identical responses bit-identical to a direct
``StressTest`` run; malformed documents are rejected before the
accountant is touched; and a concurrent-admission race admits exactly
one of two requests that together exceed the remaining budget, with the
audit ledger still reconciling bit-for-bit.
"""

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.server as server_module
from repro.api.cache import ScenarioCache
from repro.exceptions import ConvergenceError, PrivacyBudgetExceeded
from repro.privacy.budget import PrivacyAccountant
from repro.service import (
    ServiceClient,
    StressTestService,
    build_session,
    validate_scenario,
)

ITERATIONS = 2


def make_doc(name="svc-test", seed=7, epsilon=0.23, engine="secure"):
    return {
        "version": 1,
        "name": name,
        "network": {
            "generator": "core-periphery",
            "params": {"num_banks": 10, "core_size": 3},
            "seed": seed,
        },
        "shock": {"targets": [0, 1], "severity": 0.5},
        "program": "eisenberg-noe",
        "engine": engine,
        "preset": "demo",
        "epsilon": epsilon,
        "iterations": ITERATIONS,
    }


class ServiceHarness:
    """Run one StressTestService on a background event-loop thread."""

    def __init__(self, **kwargs):
        self.service = StressTestService(**kwargs)
        self.port = None
        self._thread = None

    def __enter__(self):
        started = threading.Event()

        def runner():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def main():
                self.port = await self.service.start()
                started.set()
                await self.service.serve_until_closed()

            loop.run_until_complete(main())
            loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        assert started.wait(10), "service failed to start"
        return self

    def __exit__(self, *exc_info):
        try:
            with self.client() as c:
                c.shutdown()
        except Exception:
            pass
        self._thread.join(15)
        assert not self._thread.is_alive(), "service thread failed to stop"

    def client(self):
        return ServiceClient("127.0.0.1", self.port)


class TestSubmit:
    def test_release_is_bit_identical_to_direct_run(self):
        doc = make_doc()
        validated = validate_scenario(doc)
        direct = build_session(validated).run(iterations=ITERATIONS)
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                response = c.submit(doc).raise_for_status()
        result = response.result
        assert result["aggregate"] == direct.aggregate
        assert result["pre_noise_aggregate"] == direct.pre_noise_aggregate
        assert result["noise_raw"] == direct.noise_raw
        assert result["trajectory"] == direct.trajectory
        assert response.epsilon_charged == pytest.approx(0.23)
        assert acct.spent == pytest.approx(0.23)
        assert acct.reconcile().ok

    def test_repeat_submission_hits_cache_without_second_charge(self):
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                first = c.submit(make_doc()).raise_for_status()
                second = c.submit(make_doc()).raise_for_status()
        assert not first.cached and second.cached
        assert second.epsilon_charged == 0.0
        assert first.result == second.result
        assert acct.spent == pytest.approx(0.23)
        assert h.service.counters["engine_runs"] == 1

    def test_non_releasing_engine_charges_nothing(self):
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                response = c.submit(make_doc(engine="plaintext")).raise_for_status()
        assert response.epsilon_charged == 0.0
        assert acct.spent == 0.0

    def test_malformed_document_rejected_before_any_charge(self):
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                response = c.submit(make_doc(engine="evil"))
                assert not response.ok
                assert response.status == "rejected"
                assert response.error == "ScenarioValidationError"
                with pytest.raises(Exception) as excinfo:
                    response.raise_for_status()
                assert excinfo.type.__name__ == "ScenarioValidationError"
        assert acct.spent == 0.0
        assert h.service.counters["rejected"] == 1
        assert h.service.counters["engine_runs"] == 0

    def test_over_budget_is_a_typed_refusal(self):
        acct = PrivacyAccountant(epsilon_max=0.1)
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                response = c.submit(make_doc(epsilon=0.4))
                assert not response.ok
                assert response.status == "over-budget"
                with pytest.raises(PrivacyBudgetExceeded):
                    response.raise_for_status()
        assert acct.spent == 0.0
        assert acct.reconcile().ok
        assert h.service.counters["engine_runs"] == 0


class TestSingleFlight:
    def test_concurrent_identical_requests_run_once_charge_once(self, monkeypatch):
        release_gate = threading.Event()
        calls = []
        real_execute = server_module.execute_resolved

        def gated_execute(resolved, accountant=None):
            calls.append(resolved.label)
            assert release_gate.wait(30), "test gate never opened"
            return real_execute(resolved, accountant=accountant)

        monkeypatch.setattr(server_module, "execute_resolved", gated_execute)
        acct = PrivacyAccountant()
        clients = 6
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:

            def submit_once(_):
                with h.client() as c:
                    return c.submit(make_doc()).raise_for_status()

            with ThreadPoolExecutor(clients) as pool:
                futures = [pool.submit(submit_once, i) for i in range(clients)]
                # wait until the one engine run is in flight and the other
                # requests have had a chance to pile onto its future
                deadline = time.monotonic() + 10
                while not calls and time.monotonic() < deadline:
                    time.sleep(0.01)
                while (
                    h.service.counters["deduped"] < clients - 1
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                release_gate.set()
                responses = [f.result(timeout=60) for f in futures]

        assert len(calls) == 1, "single-flight must coalesce into one run"
        assert acct.spent == pytest.approx(0.23), "exactly one epsilon charge"
        assert acct.reconcile().ok
        results = [r.result for r in responses]
        assert all(r == results[0] for r in results)
        assert h.service.counters["engine_runs"] == 1
        assert h.service.counters["deduped"] == clients - 1

    def test_admission_race_admits_exactly_one(self, monkeypatch):
        """Two in-flight requests whose combined epsilon exceeds the
        remaining budget: one admitted, the loser gets a typed
        over-budget refusal, and the ledger still reconciles."""
        release_gate = threading.Event()
        real_execute = server_module.execute_resolved

        def gated_execute(resolved, accountant=None):
            assert release_gate.wait(30)
            return real_execute(resolved, accountant=accountant)

        monkeypatch.setattr(server_module, "execute_resolved", gated_execute)
        acct = PrivacyAccountant(epsilon_max=0.6)
        # different seeds => different fingerprints => no single-flight
        docs = [make_doc(seed=1, epsilon=0.4), make_doc(seed=2, epsilon=0.4)]
        with ServiceHarness(accountant=acct, cache=ScenarioCache(), max_workers=2) as h:

            def submit_doc(doc):
                with h.client() as c:
                    return c.submit(doc)

            with ThreadPoolExecutor(2) as pool:
                futures = [pool.submit(submit_doc, d) for d in docs]
                deadline = time.monotonic() + 10
                while (
                    h.service.counters["admitted"] + h.service.counters["over_budget"]
                    < 2
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                release_gate.set()
                responses = [f.result(timeout=60) for f in futures]

        statuses = sorted(r.status for r in responses)
        assert statuses == ["over-budget", "released"]
        loser = next(r for r in responses if r.status == "over-budget")
        assert loser.error == "PrivacyBudgetExceeded"
        assert acct.spent == pytest.approx(0.4)
        assert acct.reconcile().ok

    def test_failed_run_refunds_its_precharge(self, monkeypatch):
        def exploding_execute(resolved, accountant=None):
            raise ConvergenceError("engine blew up mid-run")

        monkeypatch.setattr(server_module, "execute_resolved", exploding_execute)
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                response = c.submit(make_doc())
        assert not response.ok
        assert response.error == "ConvergenceError"
        assert "blew up" in response.message
        assert acct.spent == 0.0, "failed release must be refunded"
        assert acct.reconcile().ok
        assert h.service.counters["failed"] == 1


class TestProtocol:
    def test_garbage_line_gets_typed_error_not_silence(self):
        with ServiceHarness() as h:
            with socket.create_connection(("127.0.0.1", h.port), timeout=10) as sock:
                sock.sendall(b"this is not json\n")
                line = sock.makefile("rb").readline()
        body = json.loads(line)
        assert body["ok"] is False
        assert body["error"] == "ServiceProtocolError"

    def test_unknown_op_gets_typed_error(self):
        with ServiceHarness() as h:
            with h.client() as c:
                response = c.request({"op": "frobnicate"})
        assert not response.ok
        assert response.error == "ServiceProtocolError"
        assert "frobnicate" in response.message

    def test_non_object_request_gets_typed_error(self):
        with ServiceHarness() as h:
            with socket.create_connection(("127.0.0.1", h.port), timeout=10) as sock:
                sock.sendall(b"[1, 2, 3]\n")
                line = sock.makefile("rb").readline()
        body = json.loads(line)
        assert body["ok"] is False
        assert body["error"] == "ServiceProtocolError"

    def test_ping_and_stats(self):
        acct = PrivacyAccountant()
        with ServiceHarness(accountant=acct, cache=ScenarioCache()) as h:
            with h.client() as c:
                assert c.ping().ok
                stats = c.stats()
        assert stats.body["counters"]["requests"] >= 1
        assert stats.body["budget"]["epsilon_max"] == pytest.approx(acct.epsilon_max)
        assert "cache" in stats.body

    def test_shutdown_leaves_no_running_thread(self):
        h = ServiceHarness()
        with h:
            with h.client() as c:
                c.ping()
        # __exit__ asserted the serving thread stopped
        assert not h._thread.is_alive()
