"""The sharded backend: partitioning, ghost exchange, pool composition.

The contract: ``engine="sharded"`` is bit-identical to ``plaintext`` for
every shard count (the shard count decides *where* a vertex update runs,
never what it computes), shards degrade gracefully (more shards than
vertices, nested inside a batch pool), and the engine-option plumbing
(``.engine("sharded", shards=4)``) round-trips through the registry.
"""

import multiprocessing

import pytest

from repro import Bank, FinancialNetwork, Scenario, StressTest
from repro.api import ShardedEngine, get_engine
from repro.api.pool import cpu_budget, in_worker_process, map_in_pool, plan_workers
from repro.api.sharded import cross_shard_edges, partition_vertices
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def en_network():
    net = FinancialNetwork()
    net.add_bank(Bank(0, cash=2.0))
    net.add_bank(Bank(1, cash=1.0))
    net.add_bank(Bank(2, cash=1.0))
    net.add_bank(Bank(3, cash=0.5))
    net.add_debt(0, 1, 4.0)
    net.add_debt(0, 2, 2.0)
    net.add_debt(1, 3, 3.0)
    net.add_debt(2, 3, 1.0)
    return net


# ------------------------------------------------------------ partitioning --


def test_partition_contiguous_and_balanced():
    chunks = partition_vertices([5, 1, 3, 2, 4], 2)
    assert chunks == [[1, 2, 3], [4, 5]]
    assert partition_vertices([1, 2, 3], 1) == [[1, 2, 3]]


def test_partition_more_shards_than_vertices_drops_empties():
    assert partition_vertices([1, 2], 5) == [[1], [2]]
    assert partition_vertices([], 3) == []


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ConfigurationError, match="at least 1"):
        partition_vertices([1], 0)


def test_cross_shard_edges_counts_boundary_traffic(en_network):
    graph = en_network.to_en_graph(degree_bound=2)
    one = partition_vertices(graph.vertex_ids, 1)
    assert cross_shard_edges(graph, one) == 0
    per_vertex = partition_vertices(graph.vertex_ids, 4)
    assert cross_shard_edges(graph, per_vertex) == graph.num_edges


# ----------------------------------------------------------------- parity --


def test_sharded_bit_identical_to_plaintext(en_network):
    plain = StressTest(en_network).program("en").engine("plaintext").run(iterations=5)
    for shards in (1, 2, 3, 4, 7):
        sharded = (
            StressTest(en_network)
            .program("en")
            .engine("sharded", shards=shards)
            .run(iterations=5)
        )
        assert sharded.trajectory == plain.trajectory
        assert sharded.aggregate == plain.aggregate
        assert sharded.final_states == plain.final_states
        assert sharded.engine == "sharded"
        assert sharded.extras["shards"] == min(shards, 4)


def test_sharded_auto_iterations(en_network):
    plain = StressTest(en_network).program("en").engine("plaintext").run()
    sharded = StressTest(en_network).program("en").engine("sharded", shards=2).run()
    assert sharded.iterations == plain.iterations
    assert sharded.trajectory == plain.trajectory


def test_sharded_extras_report_ghost_traffic(en_network):
    result = (
        StressTest(en_network)
        .program("en")
        .engine("sharded", shards=2)
        .run(iterations=3)
    )
    assert result.extras["ghost_edges"] > 0
    assert result.extras["ghost_messages"] == result.extras["ghost_edges"] * 3
    assert result.extras["inline"] == 0.0
    single = (
        StressTest(en_network)
        .program("en")
        .engine("sharded", shards=1)
        .run(iterations=3)
    )
    assert single.extras["ghost_edges"] == 0.0
    assert single.extras["inline"] == 1.0


# --------------------------------------------------------- option plumbing --


def test_engine_options_reach_the_factory():
    assert get_engine("sharded", shards=4).shards == 4
    assert get_engine("shard").shards == 2  # alias, default options


def test_engine_options_are_validated():
    with pytest.raises(ConfigurationError, match="positive int"):
        get_engine("sharded", shards=0)
    with pytest.raises(ConfigurationError, match="shards"):
        get_engine("plaintext", shards=2)  # engine takes no options


def test_engine_options_refused_for_instances(en_network):
    with pytest.raises(ConfigurationError, match="instance"):
        StressTest(en_network).engine(ShardedEngine(2), shards=4)


def test_engine_options_survive_clone_and_replacement(en_network):
    session = StressTest(en_network).program("en").engine("sharded", shards=3)
    assert session.clone().resolve(iterations=1).engine.shards == 3
    # choosing a new engine drops the previous options
    session.engine("plaintext")
    assert session.resolve(iterations=1).engine.name == "plaintext"


# ------------------------------------------------------- batch composition --


def _shock_scenarios(count=3):
    def net(shock):
        n = FinancialNetwork()
        n.add_bank(Bank(0, cash=2.0 - shock))
        n.add_bank(Bank(1, cash=1.0))
        n.add_bank(Bank(2, cash=1.0))
        n.add_bank(Bank(3, cash=0.5))
        n.add_debt(0, 1, 4.0)
        n.add_debt(0, 2, 2.0)
        n.add_debt(1, 3, 3.0)
        n.add_debt(2, 3, 1.0)
        return n

    return [
        Scenario(name=f"shock-{i}", network=net(i / 2.0), seed=50 + i)
        for i in range(count)
    ]


def test_sharded_scenarios_compose_with_run_many(en_network):
    template = StressTest(en_network).program("en").engine("sharded", shards=2)
    scenarios = _shock_scenarios(3)
    pooled = template.run_many(scenarios, workers=4)
    serial = template.run_many(scenarios, workers=1)
    plain = (
        StressTest(en_network)
        .program("en")
        .engine("plaintext")
        .run_many(scenarios, workers=1)
    )
    assert pooled.aggregates() == serial.aggregates() == plain.aggregates()
    # sharded batches never run more scenario workers than CPUs (each
    # worker computes its shards inline, so it is exactly one process)
    assert pooled.workers <= cpu_budget()


def test_scenario_engine_options_flow_through(en_network):
    template = StressTest(en_network).program("en").engine("sharded", shards=4)
    batch = template.run_many(
        [
            Scenario(name="inherit"),  # template options: shards=4
            Scenario(name="narrow", engine="sharded", engine_options={"shards": 3}),
            Scenario(name="reset", engine="sharded"),  # replaces options: default 2
            Scenario(name="rewidth", engine_options={"shards": 1}),  # template name
        ],
        workers=1,
    )
    assert all(o.ok for o in batch)
    assert batch.by_name("inherit").result.extras["shards"] == 4
    assert batch.by_name("narrow").result.extras["shards"] == 3
    assert batch.by_name("reset").result.extras["shards"] == 2
    assert batch.by_name("rewidth").result.extras["shards"] == 1


def test_scenario_engine_options_refused_for_instance_template(en_network):
    template = StressTest(en_network).program("en").engine(ShardedEngine(2))
    # the refusal carries the scenario name (batch error contract)
    with pytest.raises(ConfigurationError, match=r"scenario 'opts'.*Engine instance"):
        template.run_many(
            [Scenario(name="opts", engine_options={"shards": 3})], workers=1
        )


def test_plan_workers_policy():
    assert plan_workers(3, 5) == 3  # historical: no CPU cap for plain runs
    assert plan_workers(8, 2) == 2
    # sharded batches are CPU-bound one-process workers: cap at the budget
    assert plan_workers(2 * cpu_budget(), 4 * cpu_budget(), shard_width=2) == min(
        2 * cpu_budget(), cpu_budget()
    )
    with pytest.raises(ConfigurationError, match="at least 1"):
        plan_workers(0, 3)


def test_sharded_runs_inline_inside_pool_workers(en_network):
    """A daemonic pool worker cannot fork; the engine must degrade inline."""
    graph = en_network.to_en_graph(degree_bound=2)
    resolved = (
        StressTest(en_network)
        .program("en")
        .engine("sharded", shards=3)
        .resolve(iterations=4)
    )
    direct = resolved.engine.execute(
        resolved.program, graph, 4, resolved.config
    )
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(processes=1) as pool:
        nested = pool.apply(
            _execute_in_worker, (resolved.engine, resolved.program, graph, resolved.config)
        )
    assert nested["daemon"] is True
    assert nested["inline"] == 1.0
    assert nested["trajectory"] == direct.trajectory
    assert direct.extras["inline"] == 0.0


def _execute_in_worker(engine, program, graph, config):
    result = engine.execute(program, graph, 4, config)
    return {
        "daemon": in_worker_process(),
        "inline": result.extras["inline"],
        "trajectory": result.trajectory,
    }


def test_map_in_pool_preserves_order():
    assert map_in_pool(_square, [3, 1, 2], workers=2) == [9, 1, 4]
    assert map_in_pool(_square, [5], workers=4) == [25]


def _square(x):
    return x * x
