"""Tests for XOR/additive secret sharing and subshare splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.sharing import (
    reconstruct_additive,
    reconstruct_bit,
    reconstruct_value,
    recombine_received,
    share_additive,
    share_bit,
    share_bits,
    share_value,
    split_bit_subshares,
    subshare_matrix_bits,
    xor_all,
)


class TestXorSharing:
    @given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=8))
    @settings(max_examples=scale(50))
    def test_roundtrip(self, value, parties):
        rng = DeterministicRNG(value * 31 + parties)
        shares = share_value(value, 16, parties, rng)
        assert len(shares) == parties
        assert reconstruct_value(shares, 16) == value

    def test_single_party_share_is_value(self, rng):
        assert share_value(0xBEEF, 16, 1, rng) == [0xBEEF]

    def test_negative_value_twos_complement(self, rng):
        shares = share_value(-5, 8, 3, rng)
        assert reconstruct_value(shares, 8, signed=True) == -5
        assert reconstruct_value(shares, 8, signed=False) == 251

    def test_bit_sharing(self, rng):
        for bit in (0, 1):
            shares = share_bit(bit, 5, rng)
            assert reconstruct_bit(shares) == bit

    def test_bad_bit_rejected(self, rng):
        with pytest.raises(ProtocolError):
            share_bit(2, 3, rng)

    def test_bad_party_count(self, rng):
        with pytest.raises(ProtocolError):
            share_value(1, 8, 0, rng)

    def test_share_bits_matrix(self, rng):
        value = 0b1011
        matrix = share_bits(value, 4, 3, rng)
        assert len(matrix) == 4
        for t, row in enumerate(matrix):
            assert xor_all(row) == (value >> t) & 1

    def test_any_k_shares_uniform(self):
        """Information-theoretic hiding: dropping any one share leaves the
        remaining shares' XOR uniform across repeated sharings."""
        rng = DeterministicRNG("hiding")
        observed = set()
        for _ in range(200):
            shares = share_value(0xAA, 8, 3, rng)
            observed.add(xor_all(shares[:2]))
        # With 200 draws over an 8-bit space we expect wide coverage.
        assert len(observed) > 100

    def test_reconstruct_bit_validates(self):
        with pytest.raises(ProtocolError):
            reconstruct_bit([0, 2])


class TestAdditiveSharing:
    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=scale(50))
    def test_roundtrip(self, value, parties):
        rng = DeterministicRNG(value * 7 + parties)
        modulus = 2**20
        shares = share_additive(value, modulus, parties, rng)
        assert reconstruct_additive(shares, modulus, signed=True) == value

    def test_bad_modulus(self, rng):
        with pytest.raises(ProtocolError):
            share_additive(1, 1, 2, rng)

    def test_unsigned_reconstruction(self, rng):
        shares = share_additive(7, 100, 3, rng)
        assert reconstruct_additive(shares, 100) == 7


class TestSubshares:
    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=2, max_value=6))
    @settings(max_examples=scale(30))
    def test_bit_subshare_roundtrip(self, bit, receivers):
        rng = DeterministicRNG(bit * 13 + receivers)
        subshares = split_bit_subshares(bit, receivers, rng)
        assert xor_all(subshares) == bit

    def test_matrix_preserves_message(self, rng):
        """Strawman #2 invariant: recombining received subshares yields
        fresh shares of the same message bit."""
        for message_bit in (0, 1):
            sender_shares = share_bit(message_bit, 4, rng)
            matrix = subshare_matrix_bits(sender_shares, 4, rng)
            receiver_shares = [
                recombine_received([matrix[x][y] for x in range(4)]) for y in range(4)
            ]
            assert xor_all(receiver_shares) == message_bit

    def test_fresh_shares_differ_from_originals(self, rng):
        """Resharing must not just copy the sender shares around."""
        differs = False
        for _ in range(20):
            sender_shares = share_bit(1, 3, rng)
            matrix = subshare_matrix_bits(sender_shares, 3, rng)
            receiver_shares = [
                recombine_received([matrix[x][y] for x in range(3)]) for y in range(3)
            ]
            if receiver_shares != sender_shares:
                differs = True
        assert differs
