"""Tests for the traffic meter, cost model and projections."""

import pytest

from repro.finance import EisenbergNoeProgram
from repro.mpc.fixedpoint import FixedPointFormat
from repro.simulation import (
    PAPER_COST_CONSTANTS,
    CostConstants,
    ScalabilityEstimator,
    TrafficMeter,
    fit_naive_baseline,
    matrix_multiply_circuit,
    measure_cost_constants,
)
from repro.simulation.netsim import PhaseTimer


class TestTrafficMeter:
    def test_record_send_double_entry(self):
        meter = TrafficMeter()
        meter.record_send(1, 2, 100)
        assert meter.node(1).bytes_sent == 100
        assert meter.node(2).bytes_received == 100
        assert meter.total_bytes_sent == 100

    def test_summary_fields(self):
        meter = TrafficMeter()
        meter.record_send(1, 2, 100)
        meter.record_send(2, 1, 50)
        summary = meter.summary()
        assert summary["nodes"] == 2
        assert summary["total_bytes_sent"] == 150
        assert summary["max_node_bytes_sent"] == 100
        assert meter.mean_node_bytes_sent() == 75

    def test_empty_meter(self):
        meter = TrafficMeter()
        assert meter.total_bytes_sent == 0
        assert meter.max_node_bytes_sent() == 0

    def test_phase_timer(self):
        timer = PhaseTimer()
        timer.add("compute", 1.5)
        timer.add("compute", 0.5)
        timer.add("transfer", 1.0)
        assert timer.seconds["compute"] == 2.0
        assert timer.total == 3.0


class TestCostConstants:
    def test_measured_constants_positive(self):
        constants = measure_cost_constants(gmw_parties=2, sample_and_gates=16)
        assert constants.seconds_per_ot > 0
        assert constants.seconds_per_exp > 0

    def test_paper_constants_documented(self):
        assert "paper" in PAPER_COST_CONSTANTS.label
        assert PAPER_COST_CONSTANTS.seconds_per_exp == pytest.approx(7e-4)


class TestEstimator:
    @pytest.fixture
    def estimator(self):
        program = EisenbergNoeProgram(FixedPointFormat(16, 8))
        return ScalabilityEstimator(
            program, PAPER_COST_CONSTANTS, collusion_bound=19, element_bytes=97
        )

    def test_paper_headline_magnitudes(self, estimator):
        """§5.5: N=1750, D=100 runs in about five hours with sub-GB-range
        per-node traffic. Our projection must land in that regime."""
        estimate = estimator.estimate(num_nodes=1750, degree_bound=100, iterations=11)
        assert 1.5 < estimate.hours_total < 10.0
        assert 300 < estimate.traffic_per_node_mb < 3000

    def test_time_grows_with_degree(self, estimator):
        times = [
            estimator.estimate(1750, degree, 11).seconds_total
            for degree in (10, 40, 70, 100)
        ]
        assert times == sorted(times)

    def test_traffic_linear_in_degree(self, estimator):
        t10 = estimator.estimate(1750, 10, 11).traffic_per_node_bytes
        t100 = estimator.estimate(1750, 100, 11).traffic_per_node_bytes
        assert 5 < t100 / t10 < 12

    def test_time_grows_with_iterations(self, estimator):
        """Figure 6's N-dependence comes through I = log2 N."""
        fast = estimator.estimate(100, 10, 7)
        slow = estimator.estimate(2000, 10, 11)
        assert slow.seconds_total > fast.seconds_total

    def test_transfer_time_linear_in_k(self):
        program = EisenbergNoeProgram(FixedPointFormat(16, 8))
        times = []
        for k in (7, 19):
            est = ScalabilityEstimator(program, PAPER_COST_CONSTANTS, collusion_bound=k)
            times.append(est.transfer_seconds())
        # §5.2: 285 ms at block 8 to 610 ms at block 20 — about 2.1x.
        assert times[1] / times[0] == pytest.approx(20 / 8, rel=0.25)

    def test_transfer_time_paper_magnitude(self):
        """§5.2 reports 285-610 ms per transfer; the paper-regime constants
        should reproduce that range."""
        program = EisenbergNoeProgram(FixedPointFormat(12, 6))
        est = ScalabilityEstimator(program, PAPER_COST_CONSTANTS, collusion_bound=19)
        assert 0.2 < est.transfer_seconds() < 1.2


class TestNaiveBaseline:
    def test_matmul_circuit_correct(self):
        fmt = FixedPointFormat(12, 4)
        circuit = matrix_multiply_circuit(2, fmt)
        inputs = {}
        a = [[1.0, 2.0], [0.5, 1.0]]
        b = [[2.0, 0.0], [1.0, 1.0]]
        for i in range(2):
            for j in range(2):
                inputs[f"a_{i}_{j}"] = fmt.to_unsigned(fmt.encode(a[i][j]))
                inputs[f"b_{i}_{j}"] = fmt.to_unsigned(fmt.encode(b[i][j]))
        out = circuit.evaluate(inputs)
        expected = [[4.0, 2.0], [2.0, 1.0]]
        for i in range(2):
            for j in range(2):
                got = fmt.decode(fmt.from_unsigned(out[f"c_{i}_{j}"]))
                assert got == pytest.approx(expected[i][j], abs=0.15)

    def test_and_count_cubic(self):
        fmt = FixedPointFormat(8, 2)
        ands = [matrix_multiply_circuit(n, fmt).stats().and_gates for n in (2, 4)]
        assert ands[1] / ands[0] == pytest.approx(8, rel=0.2)

    def test_fit_and_extrapolate(self):
        fmt = FixedPointFormat(8, 2)
        fit = fit_naive_baseline([2, 3], fmt, parties=2)
        assert fit.coefficient > 0
        # The §5.5 punchline: centuries at N=1750 under pure-Python GMW.
        assert fit.years_end_to_end(1750, 12) > 1.0
        # And monotone in N.
        assert fit.seconds_for_multiply(25) > fit.seconds_for_multiply(10)
