"""Tests for the full L-bit message transfer protocol (§3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.keys import SchnorrSigner
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import CryptoError, DecryptionError, ProtocolError
from repro.sharing import share_value
from repro.transfer.certificates import (
    build_certificate,
    generate_member_keys,
    verify_certificate,
)
from repro.transfer.protocol import MessageTransferProtocol, TransferTraffic

BITS = 8
BLOCK = 3


@pytest.fixture
def setup(toy_elgamal, rng):
    signer = SchnorrSigner(TOY_GROUP_64)
    tp_key = signer.keygen(rng)
    members = [generate_member_keys(toy_elgamal, BITS, rng) for _ in range(BLOCK)]
    neighbor_key = TOY_GROUP_64.random_scalar(rng)
    cert = build_certificate(
        toy_elgamal, signer, tp_key, owner=5, edge_slot=1,
        member_keys=members, neighbor_key=neighbor_key, rng=rng,
    )
    return signer, tp_key, members, neighbor_key, cert


class TestEndToEnd:
    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=scale(15), deadline=None)
    def test_any_message_survives(self, message):
        rng = DeterministicRNG(message)
        eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=512)
        signer = SchnorrSigner(TOY_GROUP_64)
        tp_key = signer.keygen(rng)
        members = [generate_member_keys(eg, BITS, rng) for _ in range(BLOCK)]
        nk = TOY_GROUP_64.random_scalar(rng)
        cert = build_certificate(eg, signer, tp_key, 0, 0, members, nk, rng)
        proto = MessageTransferProtocol(eg, BITS, noise_alpha=0.5)
        shares = share_value(message, BITS, BLOCK, rng)
        result = proto.execute(shares, cert, nk, members, rng)
        assert result.reconstruct(BITS) == message

    def test_no_noise_mode(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=None)
        shares = share_value(123, BITS, BLOCK, rng)
        result = proto.execute(shares, cert, nk, members, rng)
        assert result.reconstruct(BITS) == 123
        assert all(n == 0 for row in result.noise_terms for n in row)

    def test_receiver_shares_fresh(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=0.5)
        shares = share_value(55, BITS, BLOCK, rng)
        result = proto.execute(shares, cert, nk, members, rng)
        assert result.receiver_shares != shares  # overwhelmingly likely

    def test_block_size_mismatch(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=0.5)
        with pytest.raises(ProtocolError):
            proto.execute([1, 2], cert, nk, members, rng)

    def test_certificate_width_mismatch(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, 16, noise_alpha=0.5)
        with pytest.raises(ProtocolError):
            proto.sender_encrypt(1, cert, rng)

    def test_dlog_window_failure_injection(self, setup, rng):
        """Appendix B failure event: a tiny dlog table makes heavy noise
        overflow the window and the transfer fails detectably."""
        _, _, _, _, _ = setup
        tiny = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=3)
        signer = SchnorrSigner(TOY_GROUP_64)
        tp_key = signer.keygen(rng)
        members = [generate_member_keys(tiny, BITS, rng) for _ in range(BLOCK)]
        nk = TOY_GROUP_64.random_scalar(rng)
        cert = build_certificate(tiny, signer, tp_key, 0, 0, members, nk, rng)
        proto = MessageTransferProtocol(tiny, BITS, noise_alpha=0.95)
        failures = 0
        for trial in range(10):
            shares = share_value(trial, BITS, BLOCK, rng)
            try:
                proto.execute(shares, cert, nk, members, rng)
            except DecryptionError:
                failures += 1
        assert failures > 0


class TestEdgePrivacyMechanics:
    def test_wrong_neighbor_key_breaks_decryption(self, toy_elgamal, setup, rng):
        """Without the right Adjust scalar, the sums are garbage — the
        certificate binds the transfer to the edge owner."""
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=None)
        shares = share_value(77, BITS, BLOCK, rng)
        bundles = [proto.sender_encrypt(s, cert, rng) for s in shares]
        aggregates, _ = proto.aggregate(bundles, rng)
        wrong_key = nk + 1
        adjusted = proto.adjust(aggregates, wrong_key)
        garbled = 0
        for agg, member in zip(adjusted, members):
            try:
                proto.receiver_decrypt(agg, member)
            except DecryptionError:
                garbled += 1
        assert garbled > 0

    def test_aggregates_contain_no_sender_bytes(self, toy_elgamal, setup, rng):
        """Strawman #2's recognizability leak is closed: the ciphertext
        halves forwarded to B_v differ from everything the senders sent."""
        _, _, members, nk, cert = setup
        group = toy_elgamal.group
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=0.5)
        shares = share_value(200, BITS, BLOCK, rng)
        bundles = [proto.sender_encrypt(s, cert, rng) for s in shares]
        sent = set()
        for bundle in bundles:
            for sub in bundle:
                sent.add(group.element_to_bytes(sub.c1))
                sent.update(group.element_to_bytes(c) for c in sub.c2)
        aggregates, _ = proto.aggregate(bundles, rng)
        adjusted = proto.adjust(aggregates, nk)
        forwarded = set()
        for agg in adjusted:
            forwarded.add(group.element_to_bytes(agg.c1))
            forwarded.update(group.element_to_bytes(c) for c in agg.c2)
        assert not (sent & forwarded)

    def test_noise_terms_even(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=0.7)
        shares = share_value(14, BITS, BLOCK, rng)
        result = proto.execute(shares, cert, nk, members, rng)
        assert all(n % 2 == 0 for row in result.noise_terms for n in row)


class TestCertificates:
    def test_signature_verifies(self, toy_elgamal, setup):
        signer, tp_key, _, _, cert = setup
        verify_certificate(toy_elgamal, signer, tp_key.public, cert)

    def test_tampered_certificate_rejected(self, toy_elgamal, setup, rng):
        signer, tp_key, members, nk, cert = setup
        tampered = type(cert)(
            owner=cert.owner,
            edge_slot=cert.edge_slot,
            keys=[list(reversed(row)) for row in cert.keys],
            signature=cert.signature,
        )
        with pytest.raises(CryptoError):
            verify_certificate(toy_elgamal, signer, tp_key.public, tampered)

    def test_certificate_keys_rerandomized(self, toy_elgamal, setup):
        """Certificate keys must differ from the members' raw public keys
        (otherwise senders could identify receivers, §3.4)."""
        _, _, members, _, cert = setup
        raw = {
            toy_elgamal.group.element_to_bytes(pk)
            for member in members
            for pk in member.publics
        }
        randomized = {
            toy_elgamal.group.element_to_bytes(pk)
            for row in cert.keys
            for pk in row
        }
        assert not (raw & randomized)


class TestTrafficProfile:
    """§5.3 role asymmetry: u quadratic, members linear, receivers flat."""

    def test_roles_formula(self):
        t = TransferTraffic(element_bytes=9, block_size=4, message_bits=8)
        assert t.subshare_bytes == 9 * 9
        assert t.node_u_received_bytes == 16 * t.subshare_bytes
        assert t.sender_member_bytes == 4 * t.subshare_bytes
        assert t.receiver_member_bytes == t.subshare_bytes

    def test_u_role_quadratic_in_block(self):
        small = TransferTraffic(element_bytes=9, block_size=8, message_bits=12)
        large = TransferTraffic(element_bytes=9, block_size=20, message_bits=12)
        assert large.node_u_received_bytes / small.node_u_received_bytes == pytest.approx(
            (20 / 8) ** 2
        )

    def test_member_roles_linear_in_block(self):
        small = TransferTraffic(element_bytes=9, block_size=8, message_bits=12)
        large = TransferTraffic(element_bytes=9, block_size=20, message_bits=12)
        assert large.sender_member_bytes / small.sender_member_bytes == pytest.approx(20 / 8)

    def test_receiver_constant_in_block(self):
        small = TransferTraffic(element_bytes=9, block_size=8, message_bits=12)
        large = TransferTraffic(element_bytes=9, block_size=20, message_bits=12)
        assert small.receiver_member_bytes == large.receiver_member_bytes

    def test_paper_regime_magnitudes(self):
        """With 97-byte (uncompressed secp384r1) elements and 12-bit
        messages, the numbers land near §5.3's 97 kB - 595 kB range."""
        for block, low, high in ((8, 70e3, 120e3), (20, 450e3, 700e3)):
            t = TransferTraffic(element_bytes=97, block_size=block, message_bits=12)
            assert low < t.node_u_received_bytes < high

    def test_encryption_count(self, toy_elgamal, setup, rng):
        _, _, members, nk, cert = setup
        proto = MessageTransferProtocol(toy_elgamal, BITS, noise_alpha=0.5)
        shares = share_value(1, BITS, BLOCK, rng)
        result = proto.execute(shares, cert, nk, members, rng)
        assert result.encryptions == BLOCK * BLOCK * (BITS + 1)
