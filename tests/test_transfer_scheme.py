"""Tests for the Appendix A share transfer scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import scale

from repro.crypto.elgamal import ExponentialElGamal
from repro.crypto.group import TOY_GROUP_64
from repro.crypto.rng import DeterministicRNG
from repro.exceptions import ProtocolError
from repro.sharing import xor_all
from repro.transfer.scheme import ShareTransferScheme


@pytest.fixture
def scheme(toy_elgamal):
    return ShareTransferScheme(toy_elgamal, noise_alpha=0.5)


class TestTheorem1Correctness:
    """Theorem 1: the value shared in B_v afterwards equals the value
    shared in B_u beforehand."""

    @given(st.integers(min_value=0, max_value=1), st.integers(min_value=2, max_value=6))
    @settings(max_examples=scale(25), deadline=None)
    def test_correctness_property(self, value, block_size):
        eg = ExponentialElGamal(TOY_GROUP_64, dlog_half_width=512)
        scheme = ShareTransferScheme(eg, noise_alpha=0.5)
        rng = DeterministicRNG(value * 100 + block_size)
        instance = scheme.run(value, block_size, rng)
        assert xor_all(instance.receiver_shares) == value

    def test_correctness_without_noise(self, toy_elgamal, rng):
        scheme = ShareTransferScheme(toy_elgamal, noise_alpha=None)
        for value in (0, 1):
            instance = scheme.run(value, 4, rng)
            assert xor_all(instance.receiver_shares) == value

    def test_non_bit_rejected(self, scheme, rng):
        with pytest.raises(ProtocolError):
            scheme.run(2, 3, rng)

    def test_tiny_block_rejected(self, scheme, rng):
        with pytest.raises(ProtocolError):
            scheme.setup(1, rng)


class TestAlgorithmContracts:
    def test_encrypt_shapes(self, scheme, rng):
        keys = scheme.setup(3, rng)
        randomized = scheme.randomize_keys([k.public for k in keys], 7)
        subshares, cts = scheme.encrypt([1, 0, 1], randomized, rng)
        assert len(subshares) == 3 and all(len(row) == 3 for row in subshares)
        assert len(cts) == 3 and all(len(row) == 3 for row in cts)
        # subshare rows XOR back to the sender's share
        for share, row in zip([1, 0, 1], subshares):
            assert xor_all(row) == share

    def test_noise_terms_are_even(self, scheme, rng):
        keys = scheme.setup(4, rng)
        randomized = scheme.randomize_keys([k.public for k in keys], 11)
        _, cts = scheme.encrypt([1, 0, 0, 1], randomized, rng)
        _, noise = scheme.aggregate(cts, rng)
        assert all(n % 2 == 0 for n in noise)

    def test_noise_actually_varies(self, scheme, rng):
        keys = scheme.setup(4, rng)
        randomized = scheme.randomize_keys([k.public for k in keys], 11)
        seen = set()
        for _ in range(15):
            _, cts = scheme.encrypt([1, 0, 0, 1], randomized, rng)
            _, noise = scheme.aggregate(cts, rng)
            seen.update(noise)
        assert len(seen) > 1

    def test_decrypted_sums_are_noised_counts(self, scheme, rng):
        """Each receiver sees sum-of-subshare-bits plus even noise."""
        instance = scheme.run(1, 4, rng)
        for y, total in enumerate(instance.decrypted_sums):
            raw = sum(instance.subshares[x][y] for x in range(4))
            assert total == raw + instance.noise_terms[y]

    def test_recover_parity(self, scheme):
        assert scheme.recover([0, 1, 2, 3, 7]) == [0, 1, 0, 1, 1]

    def test_decrypt_count_mismatch(self, scheme, rng):
        keys = scheme.setup(3, rng)
        with pytest.raises(ProtocolError):
            scheme.decrypt([], keys)


class TestPrivacyStructure:
    """Structural stand-ins for the Appendix A indistinguishability game:
    the artifacts a coalition sees must not determine the secret."""

    def test_k_receiver_shares_leave_secret_open(self, scheme):
        """Any k of k+1 receiver shares are consistent with both secrets."""
        for value in (0, 1):
            partials = set()
            for trial in range(30):
                rng = DeterministicRNG(f"{value}-{trial}")
                instance = scheme.run(value, 3, rng)
                partials.add(xor_all(instance.receiver_shares[:2]))
            assert partials == {0, 1}

    def test_aggregates_hide_individual_subshares(self, scheme, rng):
        """Receivers see only noised sums: with noise enabled, observed sums
        take values outside [0, k+1] — impossible for raw counts — so the
        raw subshare count is not recoverable from a single observation."""
        observed = set()
        for trial in range(60):
            instance = scheme.run(trial & 1, 3, rng)
            observed.update(instance.decrypted_sums)
        assert any(total < 0 or total > 3 for total in observed)
