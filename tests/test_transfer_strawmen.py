"""Tests demonstrating the §3.5 strawman leaks and their fixes.

Each strawman is functionally correct (message arrives) but leaks; the
tests *demonstrate the leak*, then show the next refinement closes it.
"""

import pytest

from repro.crypto.rng import DeterministicRNG
from repro.sharing import share_value
from repro.transfer.strawman import Strawman1, Strawman2, Strawman3

BITS = 8


class TestStrawman1:
    def test_functionally_correct(self, toy_elgamal, rng):
        sm = Strawman1(toy_elgamal, BITS)
        for message in (0, 42, 255):
            assert sm.run(message, 3, rng).reconstructed(BITS) == message

    def test_leak_whole_share_to_colluders(self, toy_elgamal, rng):
        """A receiver colluding with its sender counterpart learns a whole
        share (the §3.5 objection to strawman #1)."""
        sm = Strawman1(toy_elgamal, BITS)
        outcome = sm.run(99, 3, rng)
        # Receiver y receives sender y's exact share in the clear after
        # decryption — outcome.receiver_plaintexts[y] == sender share.
        sender_shares = outcome.receiver_shares  # 1:1 mapping
        leaked = Strawman1.leaked_shares(sender_shares, {0, 2})
        assert leaked == [sender_shares[0], sender_shares[2]]


class TestStrawman2:
    def test_functionally_correct(self, toy_elgamal, rng):
        sm = Strawman2(toy_elgamal, BITS)
        for message in (0, 1, 200):
            assert sm.run(message, 4, rng).reconstructed(BITS) == message

    def test_subshares_fix_whole_share_leak(self, toy_elgamal, rng):
        """No receiver's decrypted values reveal any single sender share:
        each receiver holds one subshare per sender, jointly random."""
        sm = Strawman2(toy_elgamal, BITS)
        outcome = sm.run(77, 3, rng)
        for y, received in enumerate(outcome.receiver_plaintexts):
            assert len(received) == 3  # one subshare per sender

    def test_leak_ciphertext_recognizable(self, toy_elgamal, rng):
        """The §3.5 edge oracle: bytes sent by a corrupt sender reappear
        verbatim at the corrupt receiver."""
        sm = Strawman2(toy_elgamal, BITS)
        outcome = sm.run(5, 3, rng)
        sent_by_sender_0 = outcome.transit_ciphertexts[0]
        all_observed = [ct for row in outcome.transit_ciphertexts for ct in row]
        assert Strawman2.edge_recognizable(sent_by_sender_0, all_observed)

    def test_unrelated_ciphertexts_not_recognized(self, toy_elgamal, rng):
        sm = Strawman2(toy_elgamal, BITS)
        outcome_a = sm.run(5, 3, rng)
        outcome_b = sm.run(5, 3, rng)
        sent_a = outcome_a.transit_ciphertexts[0]
        observed_b = [ct for row in outcome_b.transit_ciphertexts for ct in row]
        assert not Strawman2.edge_recognizable(sent_a, observed_b)


class TestStrawman3:
    def test_functionally_correct(self, toy_elgamal, rng):
        sm = Strawman3(toy_elgamal, BITS)
        for message in (0, 6, 250):
            assert sm.run(message, 3, rng).reconstructed(BITS) == message

    def test_homomorphic_sums_fix_recognizability(self, toy_elgamal, rng):
        """Receivers obtain fresh aggregate ciphertext values, so sender
        bytes never reappear (the strawman #3 improvement)."""
        sm = Strawman3(toy_elgamal, BITS)
        outcome = sm.run(9, 3, rng)
        # Receivers decrypt sums in [0, block_size], not original bits...
        for sums in outcome.receiver_plaintexts:
            assert all(0 <= s <= 3 for s in sums)

    def test_leak_sums_consistent_with_subshares(self, toy_elgamal, rng):
        """The residual §3.5 side channel: exact sums are always consistent
        with the adversary's own contributions (within the honest count),
        and inconsistency would disprove the edge."""
        sm = Strawman3(toy_elgamal, BITS)
        outcome = sm.run(3, 3, rng)
        # With no noise, observed sums lie in [coalition, coalition+honest]
        # for the true coalition contribution; an all-zero fake coalition
        # bounds sums by the block size.
        for sums in outcome.receiver_plaintexts:
            fake_coalition = [[0] * BITS, [0] * BITS]
            assert Strawman3.sums_consistent(fake_coalition, sums, honest_senders=3)

    def test_consistency_check_can_exclude(self):
        """Sums outside the window prove the edge absent — the attack the
        final protocol's noise defeats."""
        coalition_bits = [[1, 1], [1, 1]]  # coalition contributed 2 per bit
        observed = [0, 1]  # below the coalition's own contribution
        assert not Strawman3.sums_consistent(coalition_bits, observed, honest_senders=1)


class TestFinalProtocolClosesLeak:
    def test_noise_breaks_sum_consistency_test(self, toy_elgamal):
        """With the final protocol's even geometric noise, observed sums
        regularly fall outside the no-noise window, so the exclusion
        attack yields false positives and stops being an oracle."""
        from repro.transfer.scheme import ShareTransferScheme

        scheme = ShareTransferScheme(toy_elgamal, noise_alpha=0.6)
        rng = DeterministicRNG("final")
        outside = 0
        trials = 40
        for trial in range(trials):
            instance = scheme.run(trial & 1, 3, rng)
            for total in instance.decrypted_sums:
                if total < 0 or total > 3:
                    outside += 1
        assert outside > 0
