"""The transport bus: delivery semantics, WAN modelling, fault paths.

The transport layer's contract is narrow but absolute: whatever the bus
(zero-delay memory, simulated WAN, fault injection), a complete round's
inbox must equal the historical dict-shuffle routing bit-for-bit, and a
round that *cannot* complete must raise a :class:`TransportError` naming
the link and round — never hang a gather.
"""

import asyncio

import pytest

from repro.core.graph import DistributedGraph
from repro.core.rounds import route_messages
from repro.core.transport import (
    FaultInjectingTransport,
    InMemoryTransport,
    SimulatedWanTransport,
    transport_from_spec,
)
from repro.core.config import DStressConfig
from repro.exceptions import ConfigurationError, TransportError
from repro.simulation.netsim import TrafficMeter


def _diamond_graph() -> DistributedGraph:
    """0 -> {1, 2} -> 3, degree bound 2 (one unused slot on 1 and 2)."""
    graph = DistributedGraph(degree_bound=2)
    for vid in range(4):
        graph.add_vertex(vid)
    graph.add_edge(0, 1)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)
    graph.add_edge(2, 3)
    return graph


def _outboxes(graph, base=100.0):
    return {
        vid: [base + 10 * vid + slot for slot in range(graph.degree_bound)]
        for vid in graph.vertex_ids
    }


# ------------------------------------------------------------ sync delivery --


def test_in_memory_deliver_matches_legacy_routing():
    graph = _diamond_graph()
    outboxes = _outboxes(graph)
    legacy = {v: [0.0] * graph.degree_bound for v in graph.vertex_ids}
    for view in graph.vertices():
        for out_slot, neighbor in enumerate(view.out_neighbors):
            in_slot = graph.vertex(neighbor).in_slot(view.vertex_id)
            legacy[neighbor][in_slot] = outboxes[view.vertex_id][out_slot]
    assert InMemoryTransport().deliver_outboxes(graph, outboxes, 0.0) == legacy
    # and route_messages without a transport is exactly that path
    assert route_messages(graph, outboxes, 0.0) == legacy


def test_route_messages_accepts_explicit_transport_and_meters():
    graph = _diamond_graph()
    outboxes = _outboxes(graph)
    meter = TrafficMeter()
    wan = SimulatedWanTransport(
        latency_seconds=0.5, message_bytes=2.0, meter=meter, realtime=False
    )
    inboxes = route_messages(graph, outboxes, 0.0, transport=wan)
    # payloads untouched by the WAN model...
    assert inboxes == route_messages(graph, outboxes, 0.0)
    # ...but the round is metered: 4 edges x 2 bytes, and delays accounted
    assert meter.total_bytes_sent == 8.0
    assert meter.num_links == 4
    assert meter.link_bytes(0, 1) == 2.0
    assert wan.simulated_seconds == pytest.approx(4 * 0.5)


def test_wan_link_delays_are_deterministic_and_jittered():
    a = SimulatedWanTransport(latency_seconds=0.01, jitter=0.5, seed=7)
    b = SimulatedWanTransport(latency_seconds=0.01, jitter=0.5, seed=7)
    delays = {(s, d): a.link_delay(s, d) for s in range(3) for d in range(3) if s != d}
    # reproducible across instances (and independent of query order)
    for (s, d), delay in sorted(delays.items(), reverse=True):
        assert b.link_delay(s, d) == delay
        assert 0.005 <= delay <= 0.015
    # jitter actually differentiates links
    assert len(set(delays.values())) > 1


def test_wan_bandwidth_adds_serialization_delay():
    wan = SimulatedWanTransport(bandwidth_bytes=100.0, message_bytes=50.0)
    assert wan.link_delay(0, 1) == pytest.approx(0.5)


def test_transport_from_spec_resolution():
    config = DStressConfig(wan_latency_seconds=0.25, wan_jitter=0.1, seed=3)
    assert isinstance(transport_from_spec("memory", config), InMemoryTransport)
    wan = transport_from_spec("wan", config)
    assert isinstance(wan, SimulatedWanTransport)
    assert wan.latency_seconds == 0.25
    assert wan.message_bytes == config.fmt.total_bits / 8.0
    passthrough = InMemoryTransport()
    assert transport_from_spec(passthrough, config) is passthrough
    with pytest.raises(ConfigurationError, match="unknown transport"):
        transport_from_spec("carrier-pigeon", config)
    with pytest.raises(ConfigurationError, match="Transport instance or a name"):
        transport_from_spec(42, config)


def test_config_validates_wan_fields():
    with pytest.raises(ConfigurationError, match="latency"):
        DStressConfig(wan_latency_seconds=-0.1)
    with pytest.raises(ConfigurationError, match="bandwidth"):
        DStressConfig(wan_bandwidth_bytes=0.0)
    with pytest.raises(ConfigurationError, match="jitter"):
        DStressConfig(wan_jitter=1.0)


# ----------------------------------------------------------- async delivery --


def _run(coro):
    return asyncio.run(coro)


def test_async_send_gather_round_trip():
    graph = _diamond_graph()
    bus = InMemoryTransport()

    async def scenario():
        bus.open(graph, fill=-1.0)
        await bus.send(0, 1, graph.vertex(1).in_slot(0), 41.0, 0)
        await bus.send(0, 2, graph.vertex(2).in_slot(0), 42.0, 0)
        inbox_1 = await bus.gather_round(1, 0)
        inbox_2 = await bus.gather_round(2, 0)
        # no in-edges at vertex 0: resolves immediately, all fill
        inbox_0 = await bus.gather_round(0, 0)
        return inbox_0, inbox_1, inbox_2

    inbox_0, inbox_1, inbox_2 = _run(scenario())
    assert inbox_0 == [-1.0, -1.0]
    assert inbox_1[graph.vertex(1).in_slot(0)] == 41.0
    assert -1.0 in inbox_1  # the unused slot holds fill
    assert inbox_2[graph.vertex(2).in_slot(0)] == 42.0


def test_gather_blocks_until_round_complete():
    graph = _diamond_graph()
    bus = InMemoryTransport()
    order = []

    async def receiver():
        inbox = await bus.gather_round(3, 0)
        order.append("gathered")
        return inbox

    async def senders():
        order.append("send-1")
        await bus.send(1, 3, graph.vertex(3).in_slot(1), 1.5, 0)
        await asyncio.sleep(0)  # give the receiver a chance to (not) fire
        order.append("send-2")
        await bus.send(2, 3, graph.vertex(3).in_slot(2), 2.5, 0)

    async def scenario():
        bus.open(graph, fill=0.0)
        inbox, _ = await asyncio.gather(receiver(), senders())
        return inbox

    inbox = _run(scenario())
    assert order == ["send-1", "send-2", "gathered"]
    assert inbox[graph.vertex(3).in_slot(1)] == 1.5
    assert inbox[graph.vertex(3).in_slot(2)] == 2.5


# --------------------------------------------------------------- fault paths --


def test_dropped_delivery_raises_instead_of_hanging():
    graph = _diamond_graph()
    bus = FaultInjectingTransport(drop=[(1, 3, 0)])

    async def scenario():
        bus.open(graph, fill=0.0)
        await bus.send(1, 3, graph.vertex(3).in_slot(1), 1.5, 0)
        await bus.send(2, 3, graph.vertex(3).in_slot(2), 2.5, 0)
        return await bus.gather_round(3, 0)

    with pytest.raises(TransportError, match=r"round 0: vertex 3 .* 1->3 .* dropped"):
        _run(scenario())


def test_duplicate_delivery_raises_at_the_sender():
    graph = _diamond_graph()
    bus = FaultInjectingTransport(duplicate=[(0, 1, 2)])

    async def scenario():
        bus.open(graph, fill=0.0)
        await bus.send(0, 1, graph.vertex(1).in_slot(0), 9.0, 2)

    with pytest.raises(TransportError, match="round 2: duplicate delivery 0->1"):
        _run(scenario())


def test_faults_apply_on_the_synchronous_path_too():
    # chaos runs over sequential engines route through deliver_outboxes;
    # each call is one round, counted from construction/open
    graph = _diamond_graph()
    outboxes = _outboxes(graph)
    bus = FaultInjectingTransport(drop=[(1, 3, 1)])
    first = bus.deliver_outboxes(graph, outboxes, 0.0)  # round 0: clean
    assert first == InMemoryTransport().deliver_outboxes(graph, outboxes, 0.0)
    with pytest.raises(TransportError, match=r"round 1: .* 1->3 .* dropped"):
        bus.deliver_outboxes(graph, outboxes, 0.0)  # round 1: faulted
    dup_bus = FaultInjectingTransport(duplicate=[(0, 2, 0)])
    with pytest.raises(TransportError, match="round 0: duplicate delivery 0->2"):
        dup_bus.deliver_outboxes(graph, outboxes, 0.0)


def test_sharded_chaos_run_raises_scenario_error():
    # a sequential-engine chaos run actually exercises the fault
    from repro import StressTest
    from repro.crypto.rng import DeterministicRNG
    from repro.finance import apply_shock, uniform_shock
    from repro.graphgen import CorePeripheryParams, core_periphery_network

    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    net = apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))
    src, dst = next(iter(net.to_en_graph(None).edges()))
    session = (
        StressTest(net)
        .program("eisenberg-noe")
        .engine("sharded", shards=1, transport=FaultInjectingTransport(drop=[(src, dst, 1)]))
        .seed(1)
    )
    with pytest.raises(TransportError, match="round 1"):
        session.run(iterations=3)


def test_reused_faulty_bus_faults_every_run():
    # engines open() the bus per execution, so a round-0 fault must fire
    # on EVERY run of a reused engine instance, not just the first
    from repro import StressTest
    from repro.crypto.rng import DeterministicRNG
    from repro.finance import apply_shock, uniform_shock
    from repro.graphgen import CorePeripheryParams, core_periphery_network

    net = core_periphery_network(
        CorePeripheryParams(num_banks=10, core_size=3), DeterministicRNG(11)
    )
    net = apply_shock(net, uniform_shock(range(0, 3), 0.9, "core-shock"))
    src, dst = next(iter(net.to_en_graph(None).edges()))
    session = (
        StressTest(net)
        .program("eisenberg-noe")
        .engine("sharded", shards=1, transport=FaultInjectingTransport(drop=[(src, dst, 0)]))
        .seed(1)
    )
    for _ in range(2):
        with pytest.raises(TransportError, match="round 0"):
            session.run(iterations=2)


def test_unfaulted_rounds_still_deliver_on_a_faulty_bus():
    graph = _diamond_graph()
    bus = FaultInjectingTransport(drop=[(1, 3, 5)])  # fault targets round 5 only

    async def scenario():
        bus.open(graph, fill=0.0)
        await bus.send(1, 3, graph.vertex(3).in_slot(1), 1.5, 0)
        await bus.send(2, 3, graph.vertex(3).in_slot(2), 2.5, 0)
        return await bus.gather_round(3, 0)

    inbox = _run(scenario())
    assert sorted(inbox) == [1.5, 2.5]


# ----------------------------------------------------------------- convey --


def test_memory_convey_is_instant_noop():
    """The reference bus carries crypto payloads with no delay and no
    bookkeeping — the protocol meter owns the byte accounting."""
    bus = InMemoryTransport()

    async def scenario():
        await bus.convey(0, 1, 1024.0, 0, kind="ot")

    _run(scenario())  # nothing to assert beyond "returns immediately"


def test_wan_convey_accounts_payload_scaled_delay_and_meters():
    meter = TrafficMeter()
    bus = SimulatedWanTransport(
        latency_seconds=0.010,
        bandwidth_bytes=1000.0,
        meter=meter,
        seed=3,
        realtime=False,
    )

    async def scenario():
        await bus.convey(0, 1, 500.0, 0, kind="ot")
        await bus.convey(0, 1, 500.0, 1, kind="transfer")

    _run(scenario())
    # latency + 500/1000 serialization, twice, no jitter
    assert bus.simulated_seconds == pytest.approx(2 * (0.010 + 0.5))
    assert meter.link_bytes(0, 1) == pytest.approx(1000.0)


def test_wan_convey_payload_overrides_message_size_for_serialization():
    bus = SimulatedWanTransport(
        latency_seconds=0.0, bandwidth_bytes=100.0, message_bytes=8.0, realtime=False
    )
    assert bus.link_delay(0, 1) == pytest.approx(0.08)
    assert bus.link_delay(0, 1, num_bytes=1000.0) == pytest.approx(10.0)


def test_faulty_convey_drop_raises_named_error():
    bus = FaultInjectingTransport(drop=[(4, 7, 2)])

    async def scenario():
        await bus.convey(4, 7, 64.0, 2, kind="ot")

    with pytest.raises(TransportError, match=r"round 2: ot delivery 4->7 was dropped"):
        _run(scenario())


def test_faulty_convey_duplicate_raises_named_error():
    bus = FaultInjectingTransport(duplicate=[(4, 7, 1)])

    async def scenario():
        await bus.convey(4, 7, 64.0, 1, kind="transfer")

    with pytest.raises(TransportError, match=r"round 1: duplicate transfer delivery 4->7"):
        _run(scenario())


def test_unfaulted_convey_passes_on_a_faulty_bus():
    bus = FaultInjectingTransport(drop=[(4, 7, 2)])

    async def scenario():
        await bus.convey(4, 7, 64.0, 0, kind="ot")  # different round: clean
        await bus.convey(7, 4, 64.0, 2, kind="ot")  # different link: clean

    _run(scenario())
